package polyvalue

import (
	"strings"
	"testing"

	"repro/internal/condition"
	"repro/internal/value"
)

func TestSimple(t *testing.T) {
	p := Simple(value.Int(100))
	v, ok := p.IsCertain()
	if !ok || !v.Equal(value.Int(100)) {
		t.Fatalf("Simple not certain: %v", p)
	}
	if p.NumPairs() != 1 {
		t.Errorf("NumPairs = %d", p.NumPairs())
	}
	if len(p.DependsOn()) != 0 {
		t.Errorf("Simple depends on %v", p.DependsOn())
	}
	if p.String() != "100" {
		t.Errorf("String = %q", p.String())
	}
	if !p.WellFormed() {
		t.Error("Simple not well-formed")
	}
}

func TestUncertainBasic(t *testing.T) {
	// §3.1: a site in doubt about T7 installs {<new, T7>, <old, !T7>}.
	p := Uncertain("T7", Simple(value.Int(50)), Simple(value.Int(100)))
	if _, ok := p.IsCertain(); ok {
		t.Fatal("uncertain value reported certain")
	}
	if p.NumPairs() != 2 {
		t.Fatalf("NumPairs = %d, want 2", p.NumPairs())
	}
	if !p.WellFormed() {
		t.Fatalf("not well-formed: %v", p)
	}
	deps := p.DependsOn()
	if len(deps) != 1 || deps[0] != "T7" {
		t.Errorf("DependsOn = %v", deps)
	}
	if !p.Mentions("T7") || p.Mentions("T8") {
		t.Error("Mentions wrong")
	}
	if !strings.Contains(p.String(), "T7") {
		t.Errorf("String = %q", p.String())
	}
}

func TestUncertainSameValueCollapses(t *testing.T) {
	// Rule 2: if the transaction writes the value already present, the
	// polyvalue collapses to a certain value — no uncertainty results.
	p := Uncertain("T1", Simple(value.Int(5)), Simple(value.Int(5)))
	v, ok := p.IsCertain()
	if !ok || !v.Equal(value.Int(5)) {
		t.Fatalf("equal-value update did not collapse: %v", p)
	}
}

func TestUncertainNestedFlattens(t *testing.T) {
	// Rule 1: updating a polyvalued item while in doubt about a second
	// transaction nests polyvalues; the result must be flat.
	inner := Uncertain("T1", Simple(value.Int(10)), Simple(value.Int(0)))
	outer := Uncertain("T2", Simple(value.Int(99)), inner)
	if !outer.WellFormed() {
		t.Fatalf("nested result not well-formed: %v", outer)
	}
	if outer.NumPairs() != 3 {
		t.Fatalf("NumPairs = %d, want 3 (99|T2, 10|!T2&T1, 0|!T2&!T1): %v", outer.NumPairs(), outer)
	}
	deps := outer.DependsOn()
	if len(deps) != 2 {
		t.Errorf("DependsOn = %v", deps)
	}
	// Under T2 committed the inner uncertainty is irrelevant.
	r := outer.Resolve("T2", true)
	if v, ok := r.IsCertain(); !ok || !v.Equal(value.Int(99)) {
		t.Errorf("Resolve(T2,commit) = %v", r)
	}
	// Under T2 aborted the inner uncertainty survives.
	r = outer.Resolve("T2", false)
	if _, ok := r.IsCertain(); ok {
		t.Errorf("Resolve(T2,abort) should stay uncertain: %v", r)
	}
	if v, ok := r.Resolve("T1", true).IsCertain(); !ok || !v.Equal(value.Int(10)) {
		t.Errorf("full resolution wrong: %v", r.Resolve("T1", true))
	}
}

func TestResolveEliminatesDependence(t *testing.T) {
	p := Uncertain("T1", Simple(value.Int(1)), Simple(value.Int(2)))
	for _, committed := range []bool{true, false} {
		r := p.Resolve("T1", committed)
		if r.Mentions("T1") {
			t.Errorf("resolved polyvalue still mentions T1: %v", r)
		}
		want := value.Int(2)
		if committed {
			want = value.Int(1)
		}
		if v, ok := r.IsCertain(); !ok || !v.Equal(want) {
			t.Errorf("Resolve(commit=%v) = %v, want %v", committed, r, want)
		}
	}
}

func TestResolveIrrelevantTID(t *testing.T) {
	p := Uncertain("T1", Simple(value.Int(1)), Simple(value.Int(2)))
	if !p.Resolve("T9", true).Equal(p) {
		t.Error("resolving unrelated transaction changed the polyvalue")
	}
}

func TestResolveAll(t *testing.T) {
	inner := Uncertain("T1", Simple(value.Int(10)), Simple(value.Int(0)))
	outer := Uncertain("T2", Simple(value.Int(99)), inner)
	r := outer.ResolveAll(map[condition.TID]bool{"T2": false, "T1": false})
	if v, ok := r.IsCertain(); !ok || !v.Equal(value.Int(0)) {
		t.Errorf("ResolveAll = %v, want 0", r)
	}
}

func TestValueUnder(t *testing.T) {
	p := Uncertain("T1", Simple(value.Int(1)), Simple(value.Int(2)))
	if v, ok := p.ValueUnder(map[condition.TID]bool{"T1": true}); !ok || !v.Equal(value.Int(1)) {
		t.Errorf("ValueUnder(T1=commit) = %v,%v", v, ok)
	}
	if v, ok := p.ValueUnder(map[condition.TID]bool{"T1": false}); !ok || !v.Equal(value.Int(2)) {
		t.Errorf("ValueUnder(T1=abort) = %v,%v", v, ok)
	}
	if _, ok := p.ValueUnder(map[condition.TID]bool{}); ok {
		t.Error("ValueUnder decided without assignment")
	}
}

func TestMinMax(t *testing.T) {
	// §5 reservations: grant if the largest possible count is under
	// capacity.
	p := Uncertain("T1", Simple(value.Int(42)), Simple(value.Int(40)))
	min, max, ok := p.MinMax()
	if !ok || min != 40 || max != 42 {
		t.Errorf("MinMax = %g,%g,%v", min, max, ok)
	}
	q := Uncertain("T1", Simple(value.Str("x")), Simple(value.Int(1)))
	if _, _, ok := q.MinMax(); ok {
		t.Error("MinMax on non-numeric should fail")
	}
}

func TestNewValidation(t *testing.T) {
	// Incomplete conditions must be rejected.
	_, err := New([]Pair{{Val: value.Int(1), Cond: condition.Committed("T1")}})
	if err == nil {
		t.Error("incomplete pair set accepted")
	}
	// Overlapping conditions must be rejected.
	_, err = New([]Pair{
		{Val: value.Int(1), Cond: condition.Committed("T1")},
		{Val: value.Int(2), Cond: condition.True()},
	})
	if err == nil {
		t.Error("overlapping pair set accepted")
	}
	// All-false input must be rejected.
	_, err = New([]Pair{{Val: value.Int(1), Cond: condition.False()}})
	if err == nil {
		t.Error("all-false pair set accepted")
	}
	// A valid two-pair set is accepted and canonicalized.
	p, err := New([]Pair{
		{Val: value.Int(2), Cond: condition.Aborted("T1")},
		{Val: value.Int(1), Cond: condition.Committed("T1")},
	})
	if err != nil {
		t.Fatalf("valid set rejected: %v", err)
	}
	if !p.Equal(Uncertain("T1", Simple(value.Int(1)), Simple(value.Int(2)))) {
		t.Errorf("New result differs from Uncertain: %v", p)
	}
}

func TestComposeThreeWay(t *testing.T) {
	// §3.2: a polytransaction with three alternatives, conditions
	// {T1&T2, T1&!T2, !T1}.
	alts := []Alternative{
		{Cond: condition.MustParse("T1&T2"), Val: Simple(value.Int(1))},
		{Cond: condition.MustParse("T1&!T2"), Val: Simple(value.Int(2))},
		{Cond: condition.MustParse("!T1"), Val: Simple(value.Int(3))},
	}
	p := Compose(alts)
	if !p.WellFormed() || p.NumPairs() != 3 {
		t.Fatalf("Compose = %v", p)
	}
	if v, _ := p.ValueUnder(map[condition.TID]bool{"T1": true, "T2": false}); !v.Equal(value.Int(2)) {
		t.Errorf("ValueUnder = %v", v)
	}
}

func TestComposeMergesAcrossAlternatives(t *testing.T) {
	// Two alternatives computing the same value merge (rule 2): the
	// polytransaction's output is certain even though inputs were not.
	alts := []Alternative{
		{Cond: condition.Committed("T1"), Val: Simple(value.Bool(true))},
		{Cond: condition.Aborted("T1"), Val: Simple(value.Bool(true))},
	}
	p := Compose(alts)
	if v, ok := p.IsCertain(); !ok || !v.Equal(value.Bool(true)) {
		t.Errorf("identical alternatives did not merge: %v", p)
	}
}

func TestComposeSkipsFalseAlternatives(t *testing.T) {
	alts := []Alternative{
		{Cond: condition.True(), Val: Simple(value.Int(7))},
		{Cond: condition.False(), Val: Simple(value.Int(8))},
	}
	p := Compose(alts)
	if v, ok := p.IsCertain(); !ok || !v.Equal(value.Int(7)) {
		t.Errorf("false alternative contaminated output: %v", p)
	}
}

func TestPossibleAndPairs(t *testing.T) {
	p := Uncertain("T1", Simple(value.Int(1)), Simple(value.Int(2)))
	poss := p.Possible()
	if len(poss) != 2 {
		t.Fatalf("Possible = %v", poss)
	}
	pairs := p.Pairs()
	pairs[0].Val = value.Int(999) // must not alias internal state
	if p.Possible()[0].Equal(value.Int(999)) {
		t.Error("Pairs exposes internal state")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	vals := []Poly{
		Simple(value.Int(42)),
		Simple(value.Nil{}),
		Uncertain("T1", Simple(value.Int(1)), Simple(value.Int(2))),
		Uncertain("T2", Simple(value.Str("new")),
			Uncertain("T1", Simple(value.Int(10)), Simple(value.Bool(false)))),
	}
	for _, p := range vals {
		data, err := p.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal %v: %v", p, err)
		}
		var back Poly
		if err := back.UnmarshalBinary(data); err != nil {
			t.Fatalf("unmarshal %v: %v", p, err)
		}
		if !back.Equal(p) {
			t.Errorf("round trip %v -> %v", p, back)
		}
	}
}

func TestBinaryRejectsMalformed(t *testing.T) {
	// Hand-craft an encoding whose conditions are not complete: one pair
	// with condition "T1".
	var buf []byte
	buf = append(buf, 1) // one pair
	buf = value.AppendBinary(buf, value.Int(1))
	buf = condition.Committed("T1").AppendBinary(buf)
	var p Poly
	if err := p.UnmarshalBinary(buf); err == nil {
		t.Error("malformed polyvalue accepted")
	}
	if err := p.UnmarshalBinary(nil); err == nil {
		t.Error("empty buffer accepted")
	}
}

func TestStringNotation(t *testing.T) {
	p := Uncertain("T7", Simple(value.Int(50)), Simple(value.Int(100)))
	s := p.String()
	if !strings.HasPrefix(s, "{<") || !strings.Contains(s, "!T7") {
		t.Errorf("String = %q", s)
	}
}
