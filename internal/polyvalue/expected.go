package polyvalue

import (
	"fmt"

	"repro/internal/condition"
	"repro/internal/value"
)

// This file extends §3.4 ("present the uncertain outputs to the user"):
// when uncertain outputs are presented, a client can weight the
// alternatives by how likely each is.  In-doubt transactions mostly
// commit in practice — the coordinator had collected every ready before
// failing — so the probability a given branch is real is well modelled by
// independent per-transaction commit probabilities.

// probLimit bounds exact weight computation (enumeration over the
// condition's variables).
const probLimit = 20

// Weights returns, for each pair (in Pairs() order), the probability
// that its condition holds, assuming each pending transaction commits
// independently with probability pCommit.  The weights sum to 1 (the
// conditions are complete and disjoint).  Errors if the polyvalue
// depends on more than 20 transactions.
func (p Poly) Weights(pCommit float64) ([]float64, error) {
	if pCommit < 0 || pCommit > 1 {
		return nil, fmt.Errorf("polyvalue: commit probability %g out of [0,1]", pCommit)
	}
	deps := p.DependsOn()
	if len(deps) > probLimit {
		return nil, fmt.Errorf("polyvalue: %d pending transactions exceed weight limit %d", len(deps), probLimit)
	}
	weights := make([]float64, len(p.pairs))
	asn := make(map[condition.TID]bool, len(deps))
	total := 1 << len(deps)
	for m := 0; m < total; m++ {
		prob := 1.0
		for i, t := range deps {
			committed := m&(1<<uint(i)) != 0
			asn[t] = committed
			if committed {
				prob *= pCommit
			} else {
				prob *= 1 - pCommit
			}
		}
		if prob == 0 {
			continue
		}
		for i, pr := range p.pairs {
			if v, ok := pr.Cond.Eval(asn); ok && v {
				weights[i] += prob
				break // disjoint: at most one pair matches
			}
		}
	}
	return weights, nil
}

// Expected returns the probability-weighted expected value of a numeric
// polyvalue, assuming independent commit probability pCommit for each
// pending transaction.  A certain value returns itself.
func (p Poly) Expected(pCommit float64) (float64, error) {
	weights, err := p.Weights(pCommit)
	if err != nil {
		return 0, err
	}
	var e float64
	for i, pr := range p.pairs {
		f, ok := value.AsFloat(pr.Val)
		if !ok {
			return 0, fmt.Errorf("polyvalue: non-numeric alternative %s", pr.Val)
		}
		e += weights[i] * f
	}
	return e, nil
}

// MostLikely returns the value whose condition is most probable under
// independent commit probability pCommit, with its weight.
func (p Poly) MostLikely(pCommit float64) (value.V, float64, error) {
	weights, err := p.Weights(pCommit)
	if err != nil {
		return nil, 0, err
	}
	best := 0
	for i := range weights {
		if weights[i] > weights[best] {
			best = i
		}
	}
	return p.pairs[best].Val, weights[best], nil
}
