package telemetry

import (
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry with one series of every kind,
// including multi-label and dotted names, in scrambled registration
// order — rendering must not care.
func goldenRegistry() *metrics.Registry {
	reg := metrics.NewRegistry()
	reg.Counter("txn.committed").Add(42)
	reg.Counter("txn.aborted").Add(7)
	reg.Gauge("poly.population").Set(3)
	reg.Gauge("site.inbox.depth", metrics.L("site", "B")).Set(2)
	reg.Gauge("site.inbox.depth", metrics.L("site", "A")).Set(5)
	h := reg.Histogram("item.blocked.seconds",
		metrics.L("site", "A"), metrics.L("cause", "lock"))
	for _, v := range []float64{0.25, 0.5, 1.0, 2.0} {
		h.Observe(v)
	}
	reg.Counter("odd-name.with chars", metrics.L("quote", `a"b\c`)).Add(1)
	return reg
}

func TestRenderOpenMetricsGolden(t *testing.T) {
	got := RenderOpenMetrics(goldenRegistry().Snapshot())
	const path = "testdata/openmetrics.golden"
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("OpenMetrics rendering drifted from golden file.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestRenderOpenMetricsDeterministic(t *testing.T) {
	a := RenderOpenMetrics(goldenRegistry().Snapshot())
	b := RenderOpenMetrics(goldenRegistry().Snapshot())
	if a != b {
		t.Error("two renderings of identical state differ")
	}
	if !strings.HasSuffix(a, "# EOF\n") {
		t.Error("missing # EOF terminator")
	}
}

// newTestServer builds a handler over a populated config.
func newTestConfig() (Config, *trace.SpanLog) {
	spans := trace.NewSpanLogFor("A", 128)
	root := spans.Record(trace.Span{Kind: trace.RootKind, TID: "t1", Site: "A",
		Start: 0, End: 100, Attrs: map[string]string{
			"status": "committed", "participants": "A,B"}})
	spans.Record(trace.Span{Kind: "phase.read", TID: "t1", Site: "A",
		Parent: root, Start: 0, End: 40})
	spans.Record(trace.Span{Kind: "part.compute", TID: "t1", Site: "B",
		Parent: root, Start: 45, End: 60})
	ring := trace.NewRing(8)
	ring.Event("hello %d", 1)
	return Config{
		Registry: goldenRegistry(),
		Spans:    spans,
		Ring:     ring,
		Health:   func() any { return map[string]int{"suspects": 0} },
	}, spans
}

func get(t *testing.T, h http.Handler, url string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestMetricsEndpoint(t *testing.T) {
	cfg, _ := newTestConfig()
	h := NewHandler(cfg)
	rec := get(t, h, "/metrics")
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE txn_committed counter",
		"txn_committed_total 42",
		`site_inbox_depth{site="A"} 5`,
		`item_blocked_seconds{cause="lock",site="A",quantile="0.5"}`,
		"item_blocked_seconds_sum{",
		"# EOF",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in:\n%s", want, body)
		}
	}
}

func TestHealthEndpoint(t *testing.T) {
	cfg, _ := newTestConfig()
	rec := get(t, NewHandler(cfg), "/healthz")
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var h health
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.RingLines != 1 || h.SpanCount != 3 {
		t.Errorf("health = %+v", h)
	}
}

func TestTraceEndpoints(t *testing.T) {
	cfg, _ := newTestConfig()
	h := NewHandler(cfg)

	rec := get(t, h, "/trace?txn=t1")
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var tl trace.Timeline
	if err := json.Unmarshal(rec.Body.Bytes(), &tl); err != nil {
		t.Fatal(err)
	}
	if tl.TID != "t1" || !tl.Complete || len(tl.Spans) != 3 {
		t.Errorf("timeline = %+v", tl)
	}

	if rec := get(t, h, "/trace?txn=nope"); rec.Code != 404 {
		t.Errorf("unknown txn: status %d", rec.Code)
	}
	if rec := get(t, h, "/trace"); rec.Code != 400 {
		t.Errorf("missing txn: status %d", rec.Code)
	}

	rec = get(t, h, "/trace/recent?n=2")
	var spans []trace.Span
	if err := json.Unmarshal(rec.Body.Bytes(), &spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 || spans[1].Kind != "part.compute" {
		t.Errorf("recent = %+v", spans)
	}
	if rec := get(t, h, "/trace/recent?n=bogus"); rec.Code != 400 {
		t.Errorf("bad n: status %d", rec.Code)
	}
}

func TestEmptyConfigServes(t *testing.T) {
	h := NewHandler(Config{})
	if rec := get(t, h, "/metrics"); rec.Code != 200 || !strings.Contains(rec.Body.String(), "# EOF") {
		t.Errorf("/metrics on empty config: %d %q", rec.Code, rec.Body.String())
	}
	if rec := get(t, h, "/healthz"); rec.Code != 200 {
		t.Errorf("/healthz on empty config: %d", rec.Code)
	}
	if rec := get(t, h, "/trace?txn=x"); rec.Code != 404 {
		t.Errorf("/trace on empty config: %d", rec.Code)
	}
	if rec := get(t, h, "/trace/recent"); rec.Code != 200 {
		t.Errorf("/trace/recent on empty config: %d", rec.Code)
	}
}

func TestServeLifecycle(t *testing.T) {
	cfg, _ := newTestConfig()
	srv, err := Serve("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("status %d", resp.StatusCode)
	}
	// pprof index must be wired.
	resp, err = http.Get("http://" + srv.Addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("pprof status %d", resp.StatusCode)
	}
}
