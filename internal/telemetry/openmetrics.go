package telemetry

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/metrics"
)

// RenderOpenMetrics renders a metrics snapshot as OpenMetrics text.
// Dotted internal names become underscore names (txn.latency.seconds →
// txn_latency_seconds); counters gain the _total sample suffix;
// histograms render as summaries (quantile series plus _count/_sum).
// Families are emitted in sorted name order and series within a family
// in sorted label order — the snapshot is already deterministic, so two
// renderings of identical state are byte-identical.
func RenderOpenMetrics(snap metrics.Snapshot) string {
	// Group points into families by translated name, keeping the
	// snapshot's deterministic within-family order.
	byName := map[string][]metrics.Point{}
	names := []string{}
	for _, p := range snap.Points {
		name := sanitizeName(p.Name)
		if _, ok := byName[name]; !ok {
			names = append(names, name)
		}
		byName[name] = append(byName[name], p)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		family := byName[name]
		switch family[0].Kind {
		case metrics.KindCounter:
			b.WriteString("# TYPE " + name + " counter\n")
			for _, p := range family {
				sample(&b, name+"_total", labelPairs(p.Labels), strconv.FormatInt(p.Value, 10))
			}
		case metrics.KindGauge:
			b.WriteString("# TYPE " + name + " gauge\n")
			for _, p := range family {
				sample(&b, name, labelPairs(p.Labels), strconv.FormatInt(p.Value, 10))
			}
		case metrics.KindHistogram:
			b.WriteString("# TYPE " + name + " summary\n")
			for _, p := range family {
				base := labelPairs(p.Labels)
				for _, q := range []struct {
					q string
					v float64
				}{{"0.5", p.P50}, {"0.9", p.P90}, {"0.99", p.P99}} {
					sample(&b, name, append(append([]string{}, base...), `quantile="`+q.q+`"`), formatFloat(q.v))
				}
				sample(&b, name+"_count", base, strconv.FormatInt(p.Count, 10))
				sample(&b, name+"_sum", base, formatFloat(p.Sum))
			}
		}
	}
	b.WriteString("# EOF\n")
	return b.String()
}

// sample writes one OpenMetrics sample line.
func sample(b *strings.Builder, name string, labels []string, value string) {
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		b.WriteString(strings.Join(labels, ","))
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// labelPairs renders sorted key="value" pairs (labels arrive sorted
// from the snapshot; sorted again here so hand-built points render
// deterministically too).
func labelPairs(labels []metrics.Label) []string {
	out := make([]string, len(labels))
	for i, l := range labels {
		out[i] = sanitizeName(l.Key) + `="` + escapeValue(l.Value) + `"`
	}
	sort.Strings(out)
	return out
}

// sanitizeName maps internal dotted names onto the OpenMetrics name
// charset [a-zA-Z0-9_:], replacing anything else with '_'.
func sanitizeName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeValue escapes a label value per the OpenMetrics text format.
func escapeValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// formatFloat renders a float deterministically and compactly.
func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
