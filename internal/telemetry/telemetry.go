// Package telemetry is the live observability endpoint: a small HTTP
// server exposing the metrics registry as OpenMetrics text, structured
// transaction spans as JSON, a health summary, and the standard pprof
// profiles.  It reads whatever instruments it is handed — it owns no
// state of its own, so attaching it to a node or benchmark changes
// nothing about the run being observed.
package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// Config wires the endpoint to a process's instruments.  Every field is
// optional: absent instruments render as empty sections rather than
// errors, so one handler serves every binary regardless of which flags
// were enabled.
type Config struct {
	// Registry backs /metrics.
	Registry *metrics.Registry
	// Spans backs /trace and /trace/recent.
	Spans *trace.SpanLog
	// Ring is the line-trace ring; its occupancy is reported in /healthz.
	Ring *trace.Ring
	// Health, when set, contributes an application-defined section to
	// /healthz (detector suspects, budget state, ...).  It is called on
	// every request and must be safe for concurrent use.
	Health func() any
}

// NewHandler builds the HTTP handler tree:
//
//	/metrics       OpenMetrics text rendering of the registry
//	/healthz       JSON health summary (plus Config.Health's section)
//	/trace?txn=ID  JSON causal timeline of one transaction
//	/trace/recent  JSON of the most recent spans (?n= limit, default 100)
//	/debug/pprof/  the standard profiles
func NewHandler(cfg Config) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", cfg.serveMetrics)
	mux.HandleFunc("/healthz", cfg.serveHealth)
	mux.HandleFunc("/trace", cfg.serveTrace)
	mux.HandleFunc("/trace/recent", cfg.serveRecent)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running telemetry endpoint.
type Server struct {
	// Addr is the bound listen address (resolves ":0" requests).
	Addr string
	srv  *http.Server
	ln   net.Listener
}

// Serve starts the endpoint on addr ("host:port"; ":0" picks a free
// port).  The server runs until Close.
func Serve(addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewHandler(cfg), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return &Server{Addr: ln.Addr().String(), srv: srv, ln: ln}, nil
}

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }

func (c Config) serveMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	if c.Registry == nil {
		fmt.Fprint(w, "# EOF\n")
		return
	}
	fmt.Fprint(w, RenderOpenMetrics(c.Registry.Snapshot()))
}

// health is the /healthz document.
type health struct {
	Status      string `json:"status"`
	RingDropped int    `json:"trace_ring_dropped,omitempty"`
	RingLines   int    `json:"trace_ring_retained,omitempty"`
	SpanCount   int    `json:"spans_retained,omitempty"`
	SpanDropped int    `json:"spans_dropped,omitempty"`
	App         any    `json:"app,omitempty"`
}

func (c Config) serveHealth(w http.ResponseWriter, r *http.Request) {
	h := health{Status: "ok"}
	if c.Ring != nil {
		h.RingDropped = c.Ring.Dropped()
		h.RingLines = len(c.Ring.Entries())
	}
	if c.Spans != nil {
		h.SpanCount = c.Spans.Len()
		h.SpanDropped = c.Spans.Dropped()
	}
	if c.Health != nil {
		h.App = c.Health()
	}
	writeJSON(w, h)
}

func (c Config) serveTrace(w http.ResponseWriter, r *http.Request) {
	tid := r.URL.Query().Get("txn")
	if tid == "" {
		http.Error(w, "missing txn parameter (use /trace?txn=ID or /trace/recent)", http.StatusBadRequest)
		return
	}
	if c.Spans == nil {
		http.Error(w, "span tracing not enabled", http.StatusNotFound)
		return
	}
	spans := c.Spans.ByTID(tid)
	if len(spans) == 0 {
		http.Error(w, "no spans for transaction "+tid, http.StatusNotFound)
		return
	}
	tls := trace.BuildTimelines(spans)
	if len(tls) == 1 {
		writeJSON(w, tls[0])
		return
	}
	writeJSON(w, tls)
}

func (c Config) serveRecent(w http.ResponseWriter, r *http.Request) {
	if c.Spans == nil {
		writeJSON(w, []trace.Span{})
		return
	}
	n := 100
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v <= 0 {
			http.Error(w, "bad n parameter", http.StatusBadRequest)
			return
		}
		n = v
	}
	spans := c.Spans.Spans()
	if len(spans) > n {
		spans = spans[len(spans)-n:]
	}
	writeJSON(w, spans)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
