package condition

// This file holds the semantic analyses used to check the paper's §3
// invariant that "the conditions on the pairs in each polyvalue must be
// complete and disjoint: one and only one of the predicates must be true
// under any assignment of truth values to the transaction identifiers."

// isTautology decides whether the canonical SOP is true under every
// assignment, by Shannon expansion on its variables.  Polyvalue
// conditions are small (§4 shows steady-state polyvalue populations of a
// handful), so the exponential worst case is acceptable; the expansion
// short-circuits aggressively through Assign's simplification.
func (c Cond) isTautology() bool {
	if len(c.products) == 1 && c.products[0].isTrue() {
		return true
	}
	if len(c.products) == 0 {
		return false
	}
	vars := c.Vars()
	t := vars[0]
	return c.Assign(t, true).isTautology() && c.Assign(t, false).isTautology()
}

// Equivalent reports whether c and d denote the same predicate.  It first
// tries cheap structural equality of the canonical forms, then decides
// semantically: c ≡ d iff (c ∧ ¬d) ∨ (¬c ∧ d) is unsatisfiable.
func (c Cond) Equivalent(d Cond) bool {
	if c.Equal(d) {
		return true
	}
	xor := c.And(d.Not()).Or(c.Not().And(d))
	return xor.IsFalse() || !xor.satisfiable()
}

// Implies reports whether c ⇒ d (every assignment satisfying c satisfies
// d).
func (c Cond) Implies(d Cond) bool {
	counter := c.And(d.Not())
	return counter.IsFalse() || !counter.satisfiable()
}

// satisfiable reports whether some assignment makes the condition true.
// In canonical SOP form every stored product is non-contradictory, so any
// product witnesses satisfiability.
func (c Cond) satisfiable() bool { return len(c.products) > 0 }

// Disjoint reports whether no assignment satisfies two of the conditions
// simultaneously (pairwise c_i ∧ c_j unsatisfiable).
func Disjoint(conds []Cond) bool {
	for i := range conds {
		for j := i + 1; j < len(conds); j++ {
			if conds[i].And(conds[j]).satisfiable() {
				return false
			}
		}
	}
	return true
}

// Complete reports whether every assignment satisfies at least one of the
// conditions (their disjunction is a tautology).
func Complete(conds []Cond) bool {
	all := False()
	for _, c := range conds {
		all = all.Or(c)
	}
	return all.IsTrue()
}

// CompleteAndDisjoint checks the paper's polyvalue well-formedness
// invariant: exactly one condition holds under any outcome assignment.
func CompleteAndDisjoint(conds []Cond) bool {
	return Disjoint(conds) && Complete(conds)
}
