// Package condition implements the boolean condition algebra that tags
// polyvalue alternatives.
//
// A condition is a predicate over transaction identifiers.  The variable
// for a transaction T is true if T committed and false if T aborted
// (Montgomery, SOSP 1979, §3).  Conditions are kept in canonical
// sum-of-products (SOP) form: a disjunction of products, each product a
// conjunction of literals ("T committed" or "T aborted").  The paper's
// simplification rule 3 ("reduce each predicate to sum-of-products form,
// and discard any pair whose condition is logically false") is the
// canonicalization implemented here.
//
// The zero value of Cond is the constant false.  Conditions are immutable:
// every operation returns a fresh canonical condition, so values may be
// freely shared between goroutines.
package condition

import (
	"sort"
	"strings"
)

// TID names a transaction.  The paper calls these "transaction
// identifiers"; they are the variables of every condition.
type TID string

// Literal is a single assertion about one transaction: T committed
// (Neg == false) or T aborted (Neg == true).
type Literal struct {
	T   TID
	Neg bool
}

// String renders the literal in the compact form used throughout the
// package: "T1" for committed, "!T1" for aborted.
func (l Literal) String() string {
	if l.Neg {
		return "!" + string(l.T)
	}
	return string(l.T)
}

// compare orders literals by transaction ID, positive before negative.
func (l Literal) compare(m Literal) int {
	switch {
	case l.T < m.T:
		return -1
	case l.T > m.T:
		return 1
	case !l.Neg && m.Neg:
		return -1
	case l.Neg && !m.Neg:
		return 1
	default:
		return 0
	}
}

// product is a conjunction of literals.  Canonical form: sorted by TID,
// at most one literal per TID.  A product containing both T and !T is
// contradictory and is never stored.  The empty product is the constant
// true.
type product struct {
	lits []Literal
}

// newProduct builds a canonical product from literals.  The second result
// is false if the literals are contradictory (contain both T and !T).
func newProduct(lits []Literal) (product, bool) {
	if len(lits) == 0 {
		return product{}, true
	}
	sorted := make([]Literal, len(lits))
	copy(sorted, lits)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].compare(sorted[j]) < 0 })
	out := sorted[:0]
	for _, l := range sorted {
		if n := len(out); n > 0 && out[n-1].T == l.T {
			if out[n-1].Neg != l.Neg {
				return product{}, false // T ∧ !T
			}
			continue // duplicate literal
		}
		out = append(out, l)
	}
	return product{lits: out}, true
}

// isTrue reports whether the product is the constant true (no literals).
func (p product) isTrue() bool { return len(p.lits) == 0 }

// find returns the sign of the literal for t, if present.
func (p product) find(t TID) (neg, ok bool) {
	i := sort.Search(len(p.lits), func(i int) bool { return p.lits[i].T >= t })
	if i < len(p.lits) && p.lits[i].T == t {
		return p.lits[i].Neg, true
	}
	return false, false
}

// without returns a copy of p with any literal on t removed.
func (p product) without(t TID) product {
	out := make([]Literal, 0, len(p.lits))
	for _, l := range p.lits {
		if l.T != t {
			out = append(out, l)
		}
	}
	return product{lits: out}
}

// subsumes reports whether p's literals are a subset of q's, meaning p is
// implied by q and q is redundant alongside p (p ∨ q ≡ p).
func (p product) subsumes(q product) bool {
	if len(p.lits) > len(q.lits) {
		return false
	}
	i := 0
	for _, l := range q.lits {
		if i < len(p.lits) && p.lits[i] == l {
			i++
		}
	}
	return i == len(p.lits)
}

// compare orders products: shorter first, then lexicographic by literal.
func (p product) compare(q product) int {
	if len(p.lits) != len(q.lits) {
		if len(p.lits) < len(q.lits) {
			return -1
		}
		return 1
	}
	for i := range p.lits {
		if c := p.lits[i].compare(q.lits[i]); c != 0 {
			return c
		}
	}
	return 0
}

// eval evaluates the product under a full assignment.  Missing variables
// are reported via ok == false.
func (p product) eval(asn map[TID]bool) (val, ok bool) {
	for _, l := range p.lits {
		committed, present := asn[l.T]
		if !present {
			return false, false
		}
		if committed == l.Neg { // literal is false
			return false, true
		}
	}
	return true, true
}

func (p product) String() string {
	if p.isTrue() {
		return "true"
	}
	parts := make([]string, len(p.lits))
	for i, l := range p.lits {
		parts[i] = l.String()
	}
	return strings.Join(parts, "&")
}

// Cond is a condition in canonical sum-of-products form.  The zero value
// is the constant false.  Cond values are immutable.
type Cond struct {
	products []product
}

// False returns the constant-false condition.
func False() Cond { return Cond{} }

// True returns the constant-true condition.
func True() Cond { return Cond{products: []product{{}}} }

// Committed returns the condition "transaction t committed".
func Committed(t TID) Cond {
	return Cond{products: []product{{lits: []Literal{{T: t}}}}}
}

// Aborted returns the condition "transaction t aborted".
func Aborted(t TID) Cond {
	return Cond{products: []product{{lits: []Literal{{T: t, Neg: true}}}}}
}

// IsFalse reports whether the condition is the constant false.  Canonical
// form guarantees the check is structural.
func (c Cond) IsFalse() bool { return len(c.products) == 0 }

// IsTrue reports whether the condition is a tautology.  The constant true
// is detected structurally; other tautologies (such as T ∨ !T) are
// detected by Shannon expansion.
func (c Cond) IsTrue() bool {
	if len(c.products) == 1 && c.products[0].isTrue() {
		return true
	}
	if len(c.products) == 0 {
		return false
	}
	return c.isTautology()
}

// Vars returns the transaction identifiers mentioned by the condition, in
// sorted order.
func (c Cond) Vars() []TID {
	seen := map[TID]bool{}
	var out []TID
	for _, p := range c.products {
		for _, l := range p.lits {
			if !seen[l.T] {
				seen[l.T] = true
				out = append(out, l.T)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Mentions reports whether the condition depends on transaction t.
func (c Cond) Mentions(t TID) bool {
	for _, p := range c.products {
		if _, ok := p.find(t); ok {
			return true
		}
	}
	return false
}

// NumProducts returns the number of products in the canonical form; a
// rough size measure used by benchmarks and metrics.
func (c Cond) NumProducts() int { return len(c.products) }

// NumLiterals returns the total literal count across all products.
func (c Cond) NumLiterals() int {
	n := 0
	for _, p := range c.products {
		n += len(p.lits)
	}
	return n
}

// String renders the condition, e.g. "T1&!T2 | T3".  The constants render
// as "true" and "false".
func (c Cond) String() string {
	if c.IsFalse() {
		return "false"
	}
	parts := make([]string, len(c.products))
	for i, p := range c.products {
		parts[i] = p.String()
	}
	return strings.Join(parts, " | ")
}

// Equal reports structural equality of canonical forms.  Because both
// operands are canonical, structural equality of the products implies
// syntactic identity; it is sufficient for equal conditions produced by
// the same operation pipeline, while Equivalent decides semantic equality.
func (c Cond) Equal(d Cond) bool {
	if len(c.products) != len(d.products) {
		return false
	}
	for i := range c.products {
		if c.products[i].compare(d.products[i]) != 0 {
			return false
		}
	}
	return true
}
