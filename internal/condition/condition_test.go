package condition

import (
	"testing"
)

func TestConstants(t *testing.T) {
	if !False().IsFalse() {
		t.Error("False().IsFalse() = false")
	}
	if False().IsTrue() {
		t.Error("False().IsTrue() = true")
	}
	if !True().IsTrue() {
		t.Error("True().IsTrue() = false")
	}
	if True().IsFalse() {
		t.Error("True().IsFalse() = true")
	}
	if got := True().String(); got != "true" {
		t.Errorf("True().String() = %q", got)
	}
	if got := False().String(); got != "false" {
		t.Errorf("False().String() = %q", got)
	}
}

func TestZeroValueIsFalse(t *testing.T) {
	var c Cond
	if !c.IsFalse() {
		t.Error("zero Cond is not false")
	}
	if !c.Or(True()).IsTrue() {
		t.Error("false | true != true")
	}
	if !c.And(True()).IsFalse() {
		t.Error("false & true != false")
	}
}

func TestLiteralConstructors(t *testing.T) {
	c := Committed("T1")
	if got := c.String(); got != "T1" {
		t.Errorf("Committed string = %q", got)
	}
	a := Aborted("T1")
	if got := a.String(); got != "!T1" {
		t.Errorf("Aborted string = %q", got)
	}
	if c.Equal(a) {
		t.Error("T1 == !T1")
	}
}

func TestAndBasics(t *testing.T) {
	t1, t2 := Committed("T1"), Committed("T2")
	c := t1.And(t2)
	if got := c.String(); got != "T1&T2" {
		t.Errorf("T1&T2 = %q", got)
	}
	if !t1.And(Aborted("T1")).IsFalse() {
		t.Error("T1 & !T1 should be false")
	}
	if !t1.And(t1).Equal(t1) {
		t.Error("And not idempotent")
	}
	if !t1.And(True()).Equal(t1) {
		t.Error("T1 & true != T1")
	}
	if !t1.And(False()).IsFalse() {
		t.Error("T1 & false != false")
	}
}

func TestOrBasics(t *testing.T) {
	t1 := Committed("T1")
	if !t1.Or(Aborted("T1")).IsTrue() {
		t.Error("T1 | !T1 should be a tautology")
	}
	if !t1.Or(t1).Equal(t1) {
		t.Error("Or not idempotent")
	}
	if !t1.Or(False()).Equal(t1) {
		t.Error("T1 | false != T1")
	}
	if !t1.Or(True()).IsTrue() {
		t.Error("T1 | true != true")
	}
}

func TestSubsumption(t *testing.T) {
	t1, t2 := Committed("T1"), Committed("T2")
	c := t1.Or(t1.And(t2)) // T1 | T1&T2 == T1
	if !c.Equal(t1) {
		t.Errorf("subsumption failed: got %v", c)
	}
}

func TestComplementMerge(t *testing.T) {
	t1, t2 := Committed("T1"), Committed("T2")
	// T1&T2 | T1&!T2 == T1
	c := t1.And(t2).Or(t1.And(Aborted("T2")))
	if !c.Equal(t1) {
		t.Errorf("complement merge failed: got %v", c)
	}
}

func TestNot(t *testing.T) {
	t1, t2 := Committed("T1"), Committed("T2")
	cases := []struct {
		in   Cond
		want Cond
	}{
		{True(), False()},
		{False(), True()},
		{t1, Aborted("T1")},
		{t1.And(t2), Aborted("T1").Or(Aborted("T2"))},
		{t1.Or(t2), Aborted("T1").And(Aborted("T2"))},
	}
	for _, c := range cases {
		if got := c.in.Not(); !got.Equivalent(c.want) {
			t.Errorf("Not(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestDoubleNegation(t *testing.T) {
	c := MustParse("T1&!T2 | T3")
	if !c.Not().Not().Equivalent(c) {
		t.Errorf("double negation changed %v to %v", c, c.Not().Not())
	}
}

func TestAssign(t *testing.T) {
	// Paper's example shape: T1&(T2|T3) expanded to SOP.
	c := MustParse("T1&T2 | T1&T3")
	if got := c.Assign("T1", false); !got.IsFalse() {
		t.Errorf("assign T1=aborted: got %v, want false", got)
	}
	if got := c.Assign("T1", true); !got.Equivalent(MustParse("T2 | T3")) {
		t.Errorf("assign T1=committed: got %v", got)
	}
	got := c.Assign("T2", true)
	if !got.Equivalent(MustParse("T1")) {
		t.Errorf("assign T2=committed: got %v, want T1", got)
	}
}

func TestAssignIrrelevantVar(t *testing.T) {
	c := MustParse("T1&!T2")
	if got := c.Assign("T9", true); !got.Equal(c) {
		t.Errorf("assigning unmentioned var changed condition: %v", got)
	}
}

func TestAssignAll(t *testing.T) {
	c := MustParse("T1&T2 | !T1&T3")
	got := c.AssignAll(map[TID]bool{"T1": true, "T2": true})
	if !got.IsTrue() {
		t.Errorf("AssignAll: got %v, want true", got)
	}
	got = c.AssignAll(map[TID]bool{"T1": false, "T3": false})
	if !got.IsFalse() {
		t.Errorf("AssignAll: got %v, want false", got)
	}
}

func TestEval(t *testing.T) {
	c := MustParse("T1&T2 | !T1&T3")
	v, ok := c.Eval(map[TID]bool{"T1": true, "T2": true, "T3": false})
	if !ok || !v {
		t.Errorf("Eval full assignment = %v,%v", v, ok)
	}
	v, ok = c.Eval(map[TID]bool{"T1": true, "T2": false, "T3": true})
	if !ok || v {
		t.Errorf("Eval = %v,%v, want false,true", v, ok)
	}
	// Partial assignment that cannot decide: T1 committed, T2 unknown.
	_, ok = c.Eval(map[TID]bool{"T1": true, "T3": false})
	if ok {
		t.Error("Eval decided with missing relevant variable")
	}
	// Partial assignment that can decide: T1 aborted kills first product,
	// T3 committed satisfies the second.
	v, ok = c.Eval(map[TID]bool{"T1": false, "T3": true})
	if !ok || !v {
		t.Errorf("Eval short-circuit = %v,%v, want true,true", v, ok)
	}
}

func TestVarsAndMentions(t *testing.T) {
	c := MustParse("T2&!T1 | T3")
	vars := c.Vars()
	want := []TID{"T1", "T2", "T3"}
	if len(vars) != len(want) {
		t.Fatalf("Vars = %v", vars)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Errorf("Vars[%d] = %v, want %v", i, vars[i], want[i])
		}
	}
	if !c.Mentions("T1") || c.Mentions("T9") {
		t.Error("Mentions wrong")
	}
	if len(True().Vars()) != 0 || len(False().Vars()) != 0 {
		t.Error("constants mention variables")
	}
}

func TestImplies(t *testing.T) {
	t1t2 := MustParse("T1&T2")
	t1 := MustParse("T1")
	if !t1t2.Implies(t1) {
		t.Error("T1&T2 should imply T1")
	}
	if t1.Implies(t1t2) {
		t.Error("T1 should not imply T1&T2")
	}
	if !False().Implies(t1) {
		t.Error("false implies everything")
	}
	if !t1.Implies(True()) {
		t.Error("everything implies true")
	}
}

func TestEquivalentSemantic(t *testing.T) {
	// Structurally different, semantically equal: distribution.
	a := MustParse("T1&T2 | T1&T3")
	b := MustParse("T1").And(MustParse("T2 | T3"))
	if !a.Equivalent(b) {
		t.Errorf("%v !~ %v", a, b)
	}
	if a.Equivalent(MustParse("T1")) {
		t.Error("false positive equivalence")
	}
}

func TestCompleteAndDisjoint(t *testing.T) {
	// The canonical polyvalue pair conditions from §3.1: {T, !T}.
	pair := []Cond{Committed("T"), Aborted("T")}
	if !CompleteAndDisjoint(pair) {
		t.Error("{T, !T} should be complete and disjoint")
	}
	// Overlapping set.
	if Disjoint([]Cond{Committed("T"), True()}) {
		t.Error("{T, true} should not be disjoint")
	}
	// Incomplete set.
	if Complete([]Cond{Committed("T1").And(Committed("T2"))}) {
		t.Error("{T1&T2} should not be complete")
	}
	// Two-transaction partition: {T1&T2, T1&!T2, !T1}.
	three := []Cond{
		MustParse("T1&T2"),
		MustParse("T1&!T2"),
		MustParse("!T1"),
	}
	if !CompleteAndDisjoint(three) {
		t.Error("three-way partition should be complete and disjoint")
	}
}

func TestTautologyDetection(t *testing.T) {
	// (T1&T2) | !T1 | (T1&!T2) is a tautology that needs Shannon
	// expansion to detect... though complement merging may collapse it.
	c := MustParse("T1&T2 | !T1 | T1&!T2")
	if !c.IsTrue() {
		t.Errorf("%v should be a tautology", c)
	}
	c = MustParse("T1&T2 | !T1&!T2")
	if c.IsTrue() {
		t.Errorf("%v is not a tautology", c)
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, s := range []string{
		"true", "false", "T1", "!T1", "T1&T2", "T1&!T2 | T3",
		"!T1&!T2&!T3", "T1 | T2 | T3",
	} {
		c := MustParse(s)
		back, err := Parse(c.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", c.String(), err)
		}
		if !back.Equal(c) {
			t.Errorf("round trip %q -> %q -> %v", s, c.String(), back)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "T1&", "|T1", "T1 T2", "!&T1", "tr ue"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestParseContradictionCollapses(t *testing.T) {
	c := MustParse("T1&!T1")
	if !c.IsFalse() {
		t.Errorf("T1&!T1 parsed to %v", c)
	}
	c = MustParse("T1&!T1 | T2")
	if !c.Equal(Committed("T2")) {
		t.Errorf("T1&!T1 | T2 parsed to %v", c)
	}
}

func TestParseDoubleNegation(t *testing.T) {
	c := MustParse("!!T1")
	if !c.Equal(Committed("T1")) {
		t.Errorf("!!T1 = %v", c)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, s := range []string{
		"true", "false", "T1", "!T1&T2 | T3", "a&b&c | !a&!b",
	} {
		c := MustParse(s)
		data, err := c.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal %v: %v", c, err)
		}
		var back Cond
		if err := back.UnmarshalBinary(data); err != nil {
			t.Fatalf("unmarshal %v: %v", c, err)
		}
		if !back.Equal(c) {
			t.Errorf("binary round trip %v -> %v", c, back)
		}
	}
}

func TestBinaryTruncated(t *testing.T) {
	c := MustParse("T1&!T2 | T3")
	data, _ := c.MarshalBinary()
	for i := 0; i < len(data); i++ {
		var back Cond
		if err := back.UnmarshalBinary(data[:i]); err == nil && i < len(data) {
			// Some prefixes may decode as a shorter valid condition only
			// if they end exactly at a product boundary AND consume all
			// input; UnmarshalBinary requires full consumption, so any
			// strict prefix that decodes must have trailing garbage.
			t.Errorf("truncation to %d bytes decoded successfully", i)
		}
	}
}

func TestDecodeBinaryTrailing(t *testing.T) {
	c := MustParse("T1")
	data, _ := c.MarshalBinary()
	data = append(data, 0xff)
	var back Cond
	if err := back.UnmarshalBinary(data); err == nil {
		t.Error("trailing bytes accepted")
	}
	got, n, err := DecodeBinary(data)
	if err != nil || n != len(data)-1 || !got.Equal(c) {
		t.Errorf("DecodeBinary = %v,%d,%v", got, n, err)
	}
}

func TestSizeAccessors(t *testing.T) {
	c := MustParse("T1&!T2 | T3")
	if c.NumProducts() != 2 {
		t.Errorf("NumProducts = %d", c.NumProducts())
	}
	if c.NumLiterals() != 3 {
		t.Errorf("NumLiterals = %d", c.NumLiterals())
	}
}
