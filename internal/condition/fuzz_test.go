package condition

import (
	"testing"
)

// FuzzParse: the parser must never panic, and anything it accepts must
// round-trip through String/Parse to an equal canonical condition.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"true", "false", "T1", "!T1", "T1&T2 | !T3", "a&b&c|d", "!!x",
		"T1&!T1", " T1 & T2 ", "|", "&", "!", "x|y|z", "T1&&T2",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		c, err := Parse(s)
		if err != nil {
			return
		}
		back, err := Parse(c.String())
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", c.String(), err)
		}
		if !back.Equal(c) {
			t.Fatalf("round trip %q -> %q -> %q", s, c.String(), back.String())
		}
	})
}

// FuzzDecodeBinary: the decoder must never panic and must reject or
// canonicalize arbitrary bytes; whatever decodes must re-encode and
// decode to an equal condition.
func FuzzDecodeBinary(f *testing.F) {
	for _, src := range []string{"true", "false", "T1&!T2 | T3"} {
		data, _ := MustParse(src).MarshalBinary()
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, n, err := DecodeBinary(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re, err := c.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		back, _, err := DecodeBinary(re)
		if err != nil {
			t.Fatalf("re-encoded condition %q does not decode: %v", c, err)
		}
		if !back.Equal(c) {
			t.Fatalf("binary round trip changed %q to %q", c, back)
		}
	})
}
