package condition

import "sort"

// canonicalize produces the canonical SOP for a set of products:
//
//  1. products are sorted and deduplicated;
//  2. subsumed products are removed (P ∨ P&Q ≡ P);
//  3. complementary pairs are merged (x&P ∨ !x&P ≡ P), iterated with
//     step 2 to a fixed point.
//
// The input slice may alias condition internals and is never mutated in
// place; ownership of the product values (which are immutable) is shared.
func canonicalize(ps []product) Cond {
	ps = dedupe(ps)
	for {
		ps = pruneSubsumed(ps)
		merged, changed := mergeComplements(ps)
		if !changed {
			return Cond{products: merged}
		}
		ps = dedupe(merged)
	}
}

// dedupe sorts products and removes exact duplicates.  A constant-true
// product collapses the whole set to {true}.
func dedupe(ps []product) []product {
	for _, p := range ps {
		if p.isTrue() {
			return []product{{}}
		}
	}
	sorted := make([]product, len(ps))
	copy(sorted, ps)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].compare(sorted[j]) < 0 })
	out := sorted[:0]
	for _, p := range sorted {
		if n := len(out); n > 0 && out[n-1].compare(p) == 0 {
			continue
		}
		out = append(out, p)
	}
	return out
}

// pruneSubsumed removes every product subsumed by a shorter (or equal
// length, earlier) one.  Input must be sorted by compare; shorter products
// sort first, so a single forward pass per candidate suffices.
func pruneSubsumed(ps []product) []product {
	out := make([]product, 0, len(ps))
	for _, q := range ps {
		redundant := false
		for _, p := range out {
			if p.subsumes(q) {
				redundant = true
				break
			}
		}
		if !redundant {
			out = append(out, q)
		}
	}
	return out
}

// mergeComplements looks for pairs of products identical except for the
// sign of one literal and replaces them with the product minus that
// literal.  Returns the (possibly unchanged) set and whether any merge
// happened.
func mergeComplements(ps []product) ([]product, bool) {
	changed := false
	out := make([]product, len(ps))
	copy(out, ps)
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			m, ok := complementMerge(out[i], out[j])
			if !ok {
				continue
			}
			// Replace pair {i, j} with the merged product.
			out[i] = m
			out = append(out[:j], out[j+1:]...)
			changed = true
			j = i // rescan pairs involving the merged product
		}
	}
	return out, changed
}

// complementMerge merges p and q when they have the same literals except
// one differing only in sign.
func complementMerge(p, q product) (product, bool) {
	if len(p.lits) != len(q.lits) || len(p.lits) == 0 {
		return product{}, false
	}
	diff := -1
	for i := range p.lits {
		if p.lits[i] == q.lits[i] {
			continue
		}
		if p.lits[i].T == q.lits[i].T && p.lits[i].Neg != q.lits[i].Neg && diff == -1 {
			diff = i
			continue
		}
		return product{}, false
	}
	if diff == -1 {
		return product{}, false // identical; dedupe handles it
	}
	lits := make([]Literal, 0, len(p.lits)-1)
	lits = append(lits, p.lits[:diff]...)
	lits = append(lits, p.lits[diff+1:]...)
	return product{lits: lits}, true
}
