package condition

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genVars is the variable universe for property tests; kept small so random
// conditions interact.
var genVars = []TID{"T1", "T2", "T3", "T4"}

// randCond builds a random condition of bounded size over genVars.
func randCond(r *rand.Rand) Cond {
	switch r.Intn(10) {
	case 0:
		return True()
	case 1:
		return False()
	}
	nProducts := 1 + r.Intn(3)
	c := False()
	for i := 0; i < nProducts; i++ {
		nLits := 1 + r.Intn(3)
		p := True()
		for j := 0; j < nLits; j++ {
			v := genVars[r.Intn(len(genVars))]
			if r.Intn(2) == 0 {
				p = p.And(Committed(v))
			} else {
				p = p.And(Aborted(v))
			}
		}
		c = c.Or(p)
	}
	return c
}

// condPair is a quick.Generator producing two random conditions.
type condPair struct{ A, B Cond }

func (condPair) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(condPair{A: randCond(r), B: randCond(r)})
}

// condTriple adds a third condition for associativity-style laws.
type condTriple struct{ A, B, C Cond }

func (condTriple) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(condTriple{A: randCond(r), B: randCond(r), C: randCond(r)})
}

// randAssignment covers all generator variables.
func randAssignment(r *rand.Rand) map[TID]bool {
	asn := make(map[TID]bool, len(genVars))
	for _, v := range genVars {
		asn[v] = r.Intn(2) == 0
	}
	return asn
}

// condWithAssignment pairs a condition with a full assignment.
type condWithAssignment struct {
	C   Cond
	Asn map[TID]bool
}

func (condWithAssignment) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(condWithAssignment{C: randCond(r), Asn: randAssignment(r)})
}

func mustEval(t *testing.T, c Cond, asn map[TID]bool) bool {
	t.Helper()
	v, ok := c.Eval(asn)
	if !ok {
		t.Fatalf("Eval(%v) under full assignment undecided", c)
	}
	return v
}

var quickCfg = &quick.Config{MaxCount: 400}

func TestPropAndMatchesSemantics(t *testing.T) {
	f := func(p condPair) bool {
		asn := randAssignment(rand.New(rand.NewSource(42)))
		for i := 0; i < 8; i++ {
			for _, v := range genVars {
				asn[v] = rand.Intn(2) == 0
			}
			got := mustEval(t, p.A.And(p.B), asn)
			want := mustEval(t, p.A, asn) && mustEval(t, p.B, asn)
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropOrMatchesSemantics(t *testing.T) {
	f := func(x condWithAssignment, y condPair) bool {
		got := mustEval(t, y.A.Or(y.B), x.Asn)
		want := mustEval(t, y.A, x.Asn) || mustEval(t, y.B, x.Asn)
		return got == want
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropNotMatchesSemantics(t *testing.T) {
	f := func(x condWithAssignment) bool {
		return mustEval(t, x.C.Not(), x.Asn) == !mustEval(t, x.C, x.Asn)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropDeMorgan(t *testing.T) {
	f := func(p condPair) bool {
		lhs := p.A.And(p.B).Not()
		rhs := p.A.Not().Or(p.B.Not())
		return lhs.Equivalent(rhs)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropDistributivity(t *testing.T) {
	f := func(p condTriple) bool {
		lhs := p.A.And(p.B.Or(p.C))
		rhs := p.A.And(p.B).Or(p.A.And(p.C))
		return lhs.Equivalent(rhs)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropAssociativityCommutativity(t *testing.T) {
	f := func(p condTriple) bool {
		if !p.A.And(p.B).Equivalent(p.B.And(p.A)) {
			return false
		}
		if !p.A.Or(p.B).Equivalent(p.B.Or(p.A)) {
			return false
		}
		if !p.A.And(p.B.And(p.C)).Equivalent(p.A.And(p.B).And(p.C)) {
			return false
		}
		return p.A.Or(p.B.Or(p.C)).Equivalent(p.A.Or(p.B).Or(p.C))
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestPropAssignAgreesWithEval: substituting an outcome then evaluating
// equals evaluating with that outcome in the assignment.  This is the
// correctness of §3.3 outcome reduction.
func TestPropAssignAgreesWithEval(t *testing.T) {
	f := func(x condWithAssignment) bool {
		for _, v := range genVars {
			reduced := x.C.Assign(v, x.Asn[v])
			if mustEval(t, reduced, x.Asn) != mustEval(t, x.C, x.Asn) {
				return false
			}
			if reduced.Mentions(v) {
				return false // assignment must eliminate the variable
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestPropCanonicalFormStable: re-canonicalizing (via Or with false) is a
// no-op, and String/Parse round-trips preserve equality.
func TestPropCanonicalFormStable(t *testing.T) {
	f := func(x condWithAssignment) bool {
		c := x.C
		if !c.Or(False()).Equal(c) {
			return false
		}
		back, err := Parse(c.String())
		if err != nil {
			return false
		}
		return back.Equal(c)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestPropBinaryRoundTrip: encode/decode is the identity on canonical
// conditions.
func TestPropBinaryRoundTrip(t *testing.T) {
	f := func(x condWithAssignment) bool {
		data, err := x.C.MarshalBinary()
		if err != nil {
			return false
		}
		var back Cond
		if err := back.UnmarshalBinary(data); err != nil {
			return false
		}
		return back.Equal(x.C)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestPropPartitionCompleteDisjoint: the condition family {c, ¬c} is
// always complete and disjoint — the shape every 2PC polyvalue starts
// with.
func TestPropPartitionCompleteDisjoint(t *testing.T) {
	f := func(x condWithAssignment) bool {
		return CompleteAndDisjoint([]Cond{x.C, x.C.Not()})
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestPropImpliesReflexiveTransitive exercises the implication decision
// procedure.
func TestPropImpliesReflexiveTransitive(t *testing.T) {
	f := func(p condTriple) bool {
		if !p.A.Implies(p.A) {
			return false
		}
		ab := p.A.And(p.B)
		if !ab.Implies(p.A) || !ab.Implies(p.B) {
			return false
		}
		// Transitivity on a constructed chain: A&B&C ⇒ A&B ⇒ A.
		abc := ab.And(p.C)
		return abc.Implies(ab) && abc.Implies(p.A)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}
