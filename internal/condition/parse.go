package condition

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse reads the textual condition syntax produced by Cond.String:
//
//	cond    := "true" | "false" | product { "|" product }
//	product := literal { "&" literal }
//	literal := [ "!" ] ident
//
// Whitespace around tokens is ignored.  The result is canonicalized, so
// Parse(s).String() may differ from s while denoting the same predicate.
func Parse(s string) (Cond, error) {
	trimmed := strings.TrimSpace(s)
	switch trimmed {
	case "true":
		return True(), nil
	case "false":
		return False(), nil
	case "":
		return False(), fmt.Errorf("condition: empty input")
	}
	var products []product
	for _, part := range strings.Split(trimmed, "|") {
		p, err := parseProduct(part)
		if err != nil {
			return False(), err
		}
		prod, ok := newProduct(p)
		if !ok {
			continue // contradictory product: contributes false
		}
		products = append(products, prod)
	}
	return canonicalize(products), nil
}

// MustParse is Parse that panics on malformed input; for tests and
// package-level constants.
func MustParse(s string) Cond {
	c, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return c
}

func parseProduct(s string) ([]Literal, error) {
	var lits []Literal
	for _, tok := range strings.Split(s, "&") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			return nil, fmt.Errorf("condition: empty literal in %q", s)
		}
		neg := false
		for strings.HasPrefix(tok, "!") {
			neg = !neg
			tok = strings.TrimSpace(tok[1:])
		}
		if !validIdent(tok) {
			return nil, fmt.Errorf("condition: bad transaction identifier %q", tok)
		}
		lits = append(lits, Literal{T: TID(tok), Neg: neg})
	}
	return lits, nil
}

func validIdent(s string) bool {
	if s == "" || s == "true" || s == "false" {
		return false
	}
	for _, r := range s {
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' && r != '-' && r != '.' && r != ':' {
			return false
		}
	}
	return true
}
