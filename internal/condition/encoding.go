package condition

import (
	"encoding/binary"
	"fmt"
)

// Binary wire format (used by the storage WAL and the simulated network):
//
//	uvarint  number of products
//	per product:
//	  uvarint  number of literals
//	  per literal:
//	    byte     0 = positive (committed), 1 = negative (aborted)
//	    uvarint  length of TID
//	    bytes    TID
//
// The format round-trips canonical form exactly; UnmarshalBinary
// re-canonicalizes anyway so corrupted-but-parseable input still yields a
// well-formed condition.

// AppendBinary appends the encoded condition to dst and returns the
// extended slice.
func (c Cond) AppendBinary(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(c.products)))
	for _, p := range c.products {
		dst = binary.AppendUvarint(dst, uint64(len(p.lits)))
		for _, l := range p.lits {
			if l.Neg {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
			dst = binary.AppendUvarint(dst, uint64(len(l.T)))
			dst = append(dst, l.T...)
		}
	}
	return dst
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (c Cond) MarshalBinary() ([]byte, error) {
	return c.AppendBinary(nil), nil
}

// DecodeBinary decodes one condition from the front of buf, returning the
// condition and the number of bytes consumed.
func DecodeBinary(buf []byte) (Cond, int, error) {
	off := 0
	np, n := binary.Uvarint(buf[off:])
	if n <= 0 {
		return False(), 0, fmt.Errorf("condition: truncated product count")
	}
	off += n
	if np > uint64(len(buf)) {
		return False(), 0, fmt.Errorf("condition: product count %d exceeds input", np)
	}
	products := make([]product, 0, np)
	for i := uint64(0); i < np; i++ {
		nl, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return False(), 0, fmt.Errorf("condition: truncated literal count")
		}
		off += n
		if nl > uint64(len(buf)) {
			return False(), 0, fmt.Errorf("condition: literal count %d exceeds input", nl)
		}
		lits := make([]Literal, 0, nl)
		for j := uint64(0); j < nl; j++ {
			if off >= len(buf) {
				return False(), 0, fmt.Errorf("condition: truncated literal sign")
			}
			neg := buf[off] == 1
			off++
			ln, n := binary.Uvarint(buf[off:])
			if n <= 0 {
				return False(), 0, fmt.Errorf("condition: truncated TID length")
			}
			off += n
			if ln > uint64(len(buf)-off) { // uint64 compare: no overflow
				return False(), 0, fmt.Errorf("condition: truncated TID")
			}
			lits = append(lits, Literal{T: TID(buf[off : off+int(ln)]), Neg: neg})
			off += int(ln)
		}
		if p, ok := newProduct(lits); ok {
			products = append(products, p)
		}
	}
	return canonicalize(products), off, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.  Trailing bytes
// are an error.
func (c *Cond) UnmarshalBinary(data []byte) error {
	decoded, n, err := DecodeBinary(data)
	if err != nil {
		return err
	}
	if n != len(data) {
		return fmt.Errorf("condition: %d trailing bytes", len(data)-n)
	}
	*c = decoded
	return nil
}
