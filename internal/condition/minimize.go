package condition

import "sort"

// minimizeVarLimit bounds exact minimization: Quine-McCluskey enumerates
// all 2^n assignments.  Polyvalue conditions have a handful of variables
// (§4: steady-state populations are tiny), so 16 is generous; larger
// conditions fall back to the standard canonical form.
const minimizeVarLimit = 16

// Minimize returns a minimal sum-of-products form equivalent to c,
// computed by the Quine-McCluskey algorithm (prime implicants, essential
// selection, then greedy cover).  The result denotes exactly the same
// predicate as c; it has at most as many products, and each product has
// at most as many literals.  Conditions over more than 16 variables are
// returned unchanged (already canonical).
//
// The standard operation pipeline (And/Or/Assign) keeps conditions in a
// canonical form that is usually already minimal; Minimize exists for
// display compaction and for long polytransaction chains whose composed
// conditions accumulate redundancy.
func (c Cond) Minimize() Cond {
	vars := c.Vars()
	n := len(vars)
	if n == 0 || n > minimizeVarLimit {
		return c
	}
	if c.IsFalse() {
		return False()
	}

	// Enumerate minterms (assignments under which c is true).
	idx := make(map[TID]uint, n)
	for i, v := range vars {
		idx[v] = uint(i)
	}
	total := 1 << n
	minterms := make([]uint32, 0, total)
	asn := make(map[TID]bool, n)
	for m := 0; m < total; m++ {
		for i, v := range vars {
			asn[v] = m&(1<<uint(i)) != 0
		}
		if val, ok := c.Eval(asn); ok && val {
			minterms = append(minterms, uint32(m))
		}
	}
	if len(minterms) == 0 {
		return False()
	}
	if len(minterms) == total {
		return True()
	}

	primes := primeImplicants(minterms, n)
	chosen := coverMinterms(primes, minterms)

	// Render chosen implicants as products.
	products := make([]product, 0, len(chosen))
	for _, imp := range chosen {
		var lits []Literal
		for i := 0; i < n; i++ {
			bit := uint32(1) << uint(i)
			if imp.mask&bit == 0 {
				continue // variable eliminated in this implicant
			}
			lits = append(lits, Literal{T: vars[i], Neg: imp.vals&bit == 0})
		}
		p, ok := newProduct(lits)
		if !ok {
			continue // unreachable: implicants are consistent
		}
		products = append(products, p)
	}
	out := canonicalize(products)
	// The greedy cover is not always optimal (cyclic prime-implicant
	// charts); never return something larger than the input.
	if out.NumProducts() > c.NumProducts() ||
		(out.NumProducts() == c.NumProducts() && out.NumLiterals() > c.NumLiterals()) {
		return c
	}
	return out
}

// implicant is a cube: vals gives the fixed variables' polarities, mask
// has a 1 bit for each fixed variable.
type implicant struct {
	vals, mask uint32
}

// covers reports whether the implicant contains the minterm.
func (im implicant) covers(m uint32) bool { return m&im.mask == im.vals }

// primeImplicants runs the tabulation step: repeatedly combine cubes
// differing in exactly one fixed bit until no combination is possible.
func primeImplicants(minterms []uint32, n int) []implicant {
	fullMask := uint32(1)<<uint(n) - 1
	current := make(map[implicant]bool, len(minterms))
	for _, m := range minterms {
		current[implicant{vals: m, mask: fullMask}] = true
	}
	var primes []implicant
	for len(current) > 0 {
		next := map[implicant]bool{}
		combined := map[implicant]bool{}
		list := make([]implicant, 0, len(current))
		for im := range current {
			list = append(list, im)
		}
		for i := 0; i < len(list); i++ {
			for j := i + 1; j < len(list); j++ {
				a, b := list[i], list[j]
				if a.mask != b.mask {
					continue
				}
				diff := a.vals ^ b.vals
				if diff == 0 || diff&(diff-1) != 0 {
					continue // must differ in exactly one bit
				}
				next[implicant{vals: a.vals &^ diff, mask: a.mask &^ diff}] = true
				combined[a] = true
				combined[b] = true
			}
		}
		for im := range current {
			if !combined[im] {
				primes = append(primes, im)
			}
		}
		current = next
	}
	return primes
}

// coverMinterms picks a small set of primes covering every minterm:
// essential primes first, then greedy by remaining coverage.
func coverMinterms(primes []implicant, minterms []uint32) []implicant {
	// Deterministic order for reproducible output.
	sort.Slice(primes, func(i, j int) bool {
		if primes[i].mask != primes[j].mask {
			return primes[i].mask < primes[j].mask
		}
		return primes[i].vals < primes[j].vals
	})
	covered := make(map[uint32]bool, len(minterms))
	var chosen []implicant
	take := func(im implicant) {
		chosen = append(chosen, im)
		for _, m := range minterms {
			if im.covers(m) {
				covered[m] = true
			}
		}
	}
	// Essential primes: sole cover of some minterm.
	for _, m := range minterms {
		var only *implicant
		count := 0
		for i := range primes {
			if primes[i].covers(m) {
				count++
				only = &primes[i]
			}
		}
		if count == 1 && !covered[m] {
			take(*only)
		}
	}
	// Greedy cover of the rest.
	for {
		remaining := 0
		for _, m := range minterms {
			if !covered[m] {
				remaining++
			}
		}
		if remaining == 0 {
			return chosen
		}
		best, bestGain := -1, 0
		for i, im := range primes {
			gain := 0
			for _, m := range minterms {
				if !covered[m] && im.covers(m) {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			return chosen // unreachable: primes cover all minterms
		}
		take(primes[best])
	}
}
