package condition

import (
	"testing"
	"testing/quick"
)

func TestMinimizeConstants(t *testing.T) {
	if !True().Minimize().IsTrue() {
		t.Error("Minimize(true) != true")
	}
	if !False().Minimize().IsFalse() {
		t.Error("Minimize(false) != false")
	}
}

func TestMinimizeKnownCases(t *testing.T) {
	cases := []struct {
		in       string
		wantSize int // products in the minimal form
	}{
		{"T1", 1},
		{"!T1", 1},
		{"T1&T2 | T1&!T2", 1},                    // = T1
		{"T1 | !T1&T2", 2},                       // = T1 | T2
		{"T1&T2 | T2&T3 | T1&!T3", 2},            // consensus T2&T3 redundant
		{"T1&T2 | !T1&T3 | T2&T3", 2},            // consensus term drops
		{"T1&T2&T3 | T1&T2&!T3 | T1&!T2", 1},     // = T1
		{"!T1&!T2 | !T1&T2 | T1&!T2 | T1&T2", 1}, // tautology shape (true)
	}
	for _, c := range cases {
		in := MustParse(c.in)
		got := in.Minimize()
		if !got.Equivalent(in) {
			t.Errorf("Minimize(%q) = %q, not equivalent", c.in, got)
		}
		size := got.NumProducts()
		if got.IsTrue() {
			size = 1
		}
		if size != c.wantSize {
			t.Errorf("Minimize(%q) = %q (%d products), want %d", c.in, got, size, c.wantSize)
		}
	}
}

// The "T1 | !T1&T2 | !T1&!T2&T3" chain is what repeated Uncertain
// wrapping produces; minimal form is T1 | T2 | T3.
func TestMinimizeUncertainChain(t *testing.T) {
	in := MustParse("T1 | !T1&T2 | !T1&!T2&T3")
	got := in.Minimize()
	want := MustParse("T1 | T2 | T3")
	if !got.Equal(want) {
		t.Errorf("Minimize = %q, want %q", got, want)
	}
}

func TestPropMinimizeEquivalentAndNoLarger(t *testing.T) {
	f := func(x condWithAssignment) bool {
		m := x.C.Minimize()
		if !m.Equivalent(x.C) {
			return false
		}
		if m.NumProducts() > x.C.NumProducts() && !x.C.IsTrue() {
			return false
		}
		// Idempotent up to equivalence (and never grows on re-run).
		m2 := m.Minimize()
		return m2.Equivalent(m) && m2.NumLiterals() <= m.NumLiterals()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMinimizeManyVarsFallsBack(t *testing.T) {
	// Build a condition over 17 variables; Minimize must return it
	// unchanged rather than enumerate 2^17 assignments.
	c := False()
	for i := 0; i < 17; i++ {
		c = c.Or(Committed(TID(string(rune('a' + i)))))
	}
	if !c.Minimize().Equal(c) {
		t.Error("large condition was not returned unchanged")
	}
}
