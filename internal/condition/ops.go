package condition

// And returns the conjunction c ∧ d in canonical form.  The result is
// built by distributing products pairwise; contradictory products are
// dropped, so And(Committed(t), Aborted(t)) is False.
func (c Cond) And(d Cond) Cond {
	if c.IsFalse() || d.IsFalse() {
		return False()
	}
	out := make([]product, 0, len(c.products)*len(d.products))
	for _, p := range c.products {
		for _, q := range d.products {
			merged := make([]Literal, 0, len(p.lits)+len(q.lits))
			merged = append(merged, p.lits...)
			merged = append(merged, q.lits...)
			if prod, ok := newProduct(merged); ok {
				out = append(out, prod)
			}
		}
	}
	return canonicalize(out)
}

// Or returns the disjunction c ∨ d in canonical form.
func (c Cond) Or(d Cond) Cond {
	out := make([]product, 0, len(c.products)+len(d.products))
	out = append(out, c.products...)
	out = append(out, d.products...)
	return canonicalize(out)
}

// Not returns the negation ¬c in canonical form, computed by De Morgan
// expansion (product of sums, redistributed).  Worst case exponential in
// the size of c; polyvalue conditions are small in practice (see the
// paper's §4 analysis), and the A2 ablation benchmark measures this cost.
func (c Cond) Not() Cond {
	if c.IsFalse() {
		return True()
	}
	// ¬(P1 ∨ P2 ∨ ...) = ¬P1 ∧ ¬P2 ∧ ...; each ¬Pi is a disjunction of
	// negated literals.
	result := True()
	for _, p := range c.products {
		if p.isTrue() {
			return False()
		}
		neg := make([]product, 0, len(p.lits))
		for _, l := range p.lits {
			neg = append(neg, product{lits: []Literal{{T: l.T, Neg: !l.Neg}}})
		}
		result = result.And(Cond{products: neg})
		if result.IsFalse() {
			return False()
		}
	}
	return result
}

// Assign substitutes a known outcome for transaction t (committed == true
// means t committed) and returns the simplified condition.  This is the
// reduction step of the paper's §3.3: "the value of the transaction
// identifier ... can be replaced by true or false in the predicates".
func (c Cond) Assign(t TID, committed bool) Cond {
	out := make([]product, 0, len(c.products))
	for _, p := range c.products {
		neg, ok := p.find(t)
		if !ok {
			out = append(out, p)
			continue
		}
		if neg != committed { // literal "t" holds iff committed, "!t" iff aborted
			// Literal satisfied: drop it from the product.
			out = append(out, p.without(t))
		}
		// Literal falsified: drop the whole product.
	}
	return canonicalize(out)
}

// AssignAll applies Assign for every entry of outcomes.
func (c Cond) AssignAll(outcomes map[TID]bool) Cond {
	out := c
	for t, committed := range outcomes {
		out = out.Assign(t, committed)
	}
	return out
}

// Eval evaluates the condition under a complete assignment.  ok is false
// when the assignment does not cover every variable the result depends on
// (a product can still be decided false by the variables present).
func (c Cond) Eval(asn map[TID]bool) (val, ok bool) {
	undecided := false
	for _, p := range c.products {
		v, complete := p.eval(asn)
		if !complete {
			undecided = true
			continue
		}
		if v {
			return true, true
		}
	}
	if undecided {
		return false, false
	}
	return false, true
}

// Restrict returns the condition specialized to the partial assignment:
// each assigned variable is substituted and the result simplified.  It is
// Assign applied for every pair, provided for symmetry with Eval.
func (c Cond) Restrict(asn map[TID]bool) Cond { return c.AssignAll(asn) }
