// Package consensus implements the leader side of Paxos Commit (Gray &
// Lamport, "Consensus on Transaction Commit"): one Paxos instance per
// participant-vote, replicated across 2F+1 acceptor sites, with the
// transaction committed iff every instance chooses Prepared.
//
// Like the protocol package's coordinator/participant, the Leader is a
// pure state machine: it consumes acceptor replies and emits the
// messages to send, with no transport, storage, or clock of its own.
// The cluster runtime owns retransmission timers, ballot escalation,
// and the acceptor side (which is a thin shim over the storage layer's
// durable promise/accept records).
//
// Ballot discipline:
//
//   - Ballot 0 is the coordinator's fast path.  Only participant i ever
//     proposes a ballot-0 value for instance i (its own vote, sent
//     straight to the acceptors with its ready/refuse), so ballot 0
//     needs no phase 1.
//   - Takeover ballots are partitioned by site index so two would-be
//     leaders never collide: site s (0-based index in the membership
//     list of size n) uses ballots s+1+a·n for attempts a = 1, 2, …
//
// Safety facts the cluster integration relies on (and the tests pin):
//
//   - A chosen Aborted in any instance makes commit unchoosable forever
//     (commit requires every instance prepared), so the leader may
//     announce abort the moment one instance chooses Aborted.
//   - Commit is announceable only when the full participant set is
//     known (from the registrar) and every instance chose Prepared.
//   - A takeover leader proposes the revealed value at the highest
//     ballot for each instance, and Aborted for free instances; it
//     never invents a Prepared vote.
package consensus

import (
	"sort"

	"repro/internal/protocol"
	"repro/internal/txn"
)

// Quorum is the majority size for n acceptors: any two quorums
// intersect, which is all Paxos needs.
func Quorum(n int) int { return n/2 + 1 }

// Acceptors picks the decision plane's acceptor group from the cluster
// membership: the sorted prefix of size min(want, len(sites)), trimmed
// to an odd 2F+1 so F failures leave a majority.  want ≤ 0 selects the
// default group size of 5 (F = 2).  Every site computes the same group
// from the same membership, so no message needs to carry it.
func Acceptors(sites []protocol.SiteID, want int) []protocol.SiteID {
	sorted := append([]protocol.SiteID{}, sites...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if want <= 0 {
		want = 5
	}
	if want > len(sorted) {
		want = len(sorted)
	}
	if want%2 == 0 {
		want--
	}
	if want < 1 {
		want = 1
	}
	return sorted[:want]
}

// BallotAbove returns the smallest ballot in site siteIdx's series
// (siteIdx+1+a·n, a ≥ 1) strictly above floor.  Escalating leaders pass
// the highest ballot they have seen (their own or a conflicting promise
// from a reject) as the floor.
func BallotAbove(floor uint32, siteIdx, n int) uint32 {
	b := uint32(n + siteIdx + 1)
	for b <= floor {
		b += uint32(n)
	}
	return b
}

// Leader drives one transaction's decision to consensus.  Exactly one
// of two modes:
//
//   - ballot 0 (NewBallot0): the coordinator collects the 2b replies
//     the acceptors send it for the participants' direct votes;
//   - takeover (NewTakeover): any site runs phase 1 to reveal what
//     ballot 0 may have achieved, then proposes at its own ballot.
type Leader struct {
	tid       txn.ID
	self      protocol.SiteID
	acceptors []protocol.SiteID
	ballot    uint32

	// participants is the known instance set; registrar marks it
	// authoritative (from the coordinator or a revealed MsgPaxosBegin).
	// Without the registrar bit the set is only a lower bound and commit
	// cannot be decided.
	participants map[protocol.SiteID]bool
	registrar    bool
	// coordinator is the transaction's coordinator as revealed by
	// promises ("" until learned); takeover proposals carry it so late
	// acceptors can register it.
	coordinator protocol.SiteID

	// Phase 1 (takeover mode only).
	promised map[protocol.SiteID]bool
	revealed map[protocol.SiteID]protocol.PaxosInst
	phase2   bool
	proposal []protocol.PaxosInst

	// Phase 2: per-instance acceptor tallies and the accepted votes.
	accepts map[protocol.SiteID]map[protocol.SiteID]bool
	votes   map[protocol.SiteID]protocol.Vote
	chosen  map[protocol.SiteID]protocol.Vote

	decided   bool
	committed bool
	// superseded is the highest conflicting promise reported by a
	// reject; once non-zero this leader is dead and the caller must
	// escalate above it.
	superseded uint32
}

func newLeader(tid txn.ID, self protocol.SiteID, acceptors []protocol.SiteID, ballot uint32) *Leader {
	return &Leader{
		tid: tid, self: self,
		acceptors:    append([]protocol.SiteID{}, acceptors...),
		ballot:       ballot,
		participants: map[protocol.SiteID]bool{},
		promised:     map[protocol.SiteID]bool{},
		revealed:     map[protocol.SiteID]protocol.PaxosInst{},
		accepts:      map[protocol.SiteID]map[protocol.SiteID]bool{},
		votes:        map[protocol.SiteID]protocol.Vote{},
		chosen:       map[protocol.SiteID]protocol.Vote{},
	}
}

// NewBallot0 builds the coordinator's fast-path collector: phase 2 is
// already running (the participants' votes are the 2a messages), so the
// leader only tallies MsgPaxosAccepted replies.  It emits no messages
// of its own — liveness comes from the caller's escalation to a
// takeover ballot if the tallies stall.
func NewBallot0(tid txn.ID, self protocol.SiteID, acceptors, participants []protocol.SiteID) *Leader {
	l := newLeader(tid, self, acceptors, 0)
	for _, p := range participants {
		l.participants[p] = true
	}
	l.registrar = true
	l.phase2 = true
	return l
}

// NewTakeover builds a higher-ballot leader and returns the phase-1a
// messages to send.  seed lists instances the caller knows must exist
// (its own, as an in-doubt participant; the full set, as a recovered
// coordinator) — phase 1 may reveal more.
func NewTakeover(tid txn.ID, self protocol.SiteID, acceptors []protocol.SiteID, ballot uint32, seed []protocol.SiteID) (*Leader, []protocol.Message) {
	l := newLeader(tid, self, acceptors, ballot)
	for _, p := range seed {
		l.participants[p] = true
	}
	msgs := make([]protocol.Message, 0, len(acceptors))
	for _, a := range l.acceptors {
		msgs = append(msgs, protocol.Message{
			Kind: protocol.MsgPaxosPrepare, TID: tid, To: a, Ballot: ballot,
		})
	}
	return l, msgs
}

// Ballot returns the leader's ballot.
func (l *Leader) Ballot() uint32 { return l.ballot }

// Quorum returns the acceptor majority size.
func (l *Leader) Quorum() int { return Quorum(len(l.acceptors)) }

// Coordinator returns the transaction's coordinator as far as this
// leader knows ("" when never revealed).
func (l *Leader) Coordinator() protocol.SiteID { return l.coordinator }

// Superseded returns the highest conflicting promise seen (0 if none):
// the floor the next escalation ballot must clear.
func (l *Leader) Superseded() uint32 { return l.superseded }

// Decided reports the consensus outcome once reached.
func (l *Leader) Decided() (committed, ok bool) { return l.committed, l.decided }

// Participants returns the known instance set, sorted.
func (l *Leader) Participants() []protocol.SiteID {
	out := make([]protocol.SiteID, 0, len(l.participants))
	for p := range l.participants {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// OnPromise consumes a phase-1b reply.  When a quorum of promises is in,
// it enters phase 2 and returns the 2a messages to send; nil otherwise.
func (l *Leader) OnPromise(from protocol.SiteID, msg protocol.Message) []protocol.Message {
	if l.decided || l.superseded != 0 || msg.Ballot != l.ballot || l.ballot == 0 {
		return nil
	}
	for _, p := range msg.Participants {
		l.participants[p] = true
	}
	if len(msg.Participants) > 0 {
		l.registrar = true
	}
	if msg.Coordinator != "" {
		l.coordinator = msg.Coordinator
	}
	for _, in := range msg.PaxosState {
		if in.Vote == protocol.VoteNone {
			continue
		}
		if cur, ok := l.revealed[in.Instance]; !ok || in.Ballot > cur.Ballot {
			l.revealed[in.Instance] = in
		}
		l.participants[in.Instance] = true
	}
	l.promised[from] = true
	if l.phase2 || len(l.promised) < l.Quorum() {
		return nil
	}
	return l.propose()
}

// propose enters phase 2: for every known instance, the revealed value
// at the highest ballot wins; free instances get Aborted.  Never invents
// a Prepared vote — that right belongs to the participant alone, at
// ballot 0.
func (l *Leader) propose() []protocol.Message {
	l.phase2 = true
	insts := l.Participants()
	l.proposal = make([]protocol.PaxosInst, 0, len(insts))
	for _, inst := range insts {
		vote := protocol.VoteAborted
		if r, ok := l.revealed[inst]; ok {
			vote = r.Vote
		}
		l.proposal = append(l.proposal, protocol.PaxosInst{Instance: inst, Ballot: l.ballot, Vote: vote})
	}
	msgs := make([]protocol.Message, 0, len(l.acceptors))
	for _, a := range l.acceptors {
		msgs = append(msgs, l.acceptMsg(a))
	}
	return msgs
}

func (l *Leader) acceptMsg(to protocol.SiteID) protocol.Message {
	m := protocol.Message{
		Kind: protocol.MsgPaxosAccept, TID: l.tid, To: to,
		Ballot:     l.ballot,
		PaxosState: l.proposal,
		// The 2b reply comes back to this leader.
		Coordinator: l.self,
	}
	if l.registrar {
		// Piggyback the registrar so acceptors that missed the
		// coordinator's MsgPaxosBegin still learn the instance set.
		m.Participants = l.Participants()
	}
	return m
}

// OnAccepted consumes a phase-2b reply and tallies choices.  Returns
// true when this reply completed the decision.
func (l *Leader) OnAccepted(from protocol.SiteID, msg protocol.Message) bool {
	if l.decided || l.superseded != 0 || msg.Ballot != l.ballot || !l.phase2 {
		return false
	}
	for _, in := range msg.PaxosState {
		if in.Ballot != l.ballot || in.Vote == protocol.VoteNone {
			continue
		}
		set, ok := l.accepts[in.Instance]
		if !ok {
			set = map[protocol.SiteID]bool{}
			l.accepts[in.Instance] = set
		}
		set[from] = true
		l.votes[in.Instance] = in.Vote
		l.participants[in.Instance] = true
		if len(set) >= l.Quorum() {
			l.chosen[in.Instance] = l.votes[in.Instance]
		}
	}
	return l.evaluate()
}

// evaluate derives the decision from the chosen values: one chosen
// Aborted decides abort immediately; commit needs the registrar's full
// instance set, each instance chosen Prepared.
func (l *Leader) evaluate() bool {
	if l.decided {
		return false
	}
	for _, v := range l.chosen {
		if v == protocol.VoteAborted {
			l.decided, l.committed = true, false
			return true
		}
	}
	if !l.registrar || len(l.participants) == 0 {
		return false
	}
	for p := range l.participants {
		if l.chosen[p] != protocol.VotePrepared {
			return false
		}
	}
	l.decided, l.committed = true, true
	return true
}

// OnReject notes a conflicting promise: this leader's ballot lost and
// the caller must escalate with a ballot above Superseded().
func (l *Leader) OnReject(promised uint32) {
	if promised > l.superseded {
		l.superseded = promised
	}
}

// Resend re-emits the current phase's messages to the acceptors still
// missing: phase-1a prepares to acceptors that have not promised, or
// phase-2a accepts to acceptors with incomplete tallies.  The ballot-0
// collector returns nil — its 2a messages were the participants' votes,
// which only escalation can replace.
func (l *Leader) Resend() []protocol.Message {
	if l.decided || l.superseded != 0 || l.ballot == 0 {
		return nil
	}
	var msgs []protocol.Message
	for _, a := range l.acceptors {
		if !l.phase2 {
			if !l.promised[a] {
				msgs = append(msgs, protocol.Message{
					Kind: protocol.MsgPaxosPrepare, TID: l.tid, To: a, Ballot: l.ballot,
				})
			}
			continue
		}
		complete := true
		for _, in := range l.proposal {
			if !l.accepts[in.Instance][a] {
				complete = false
				break
			}
		}
		if !complete {
			msgs = append(msgs, l.acceptMsg(a))
		}
	}
	return msgs
}
