package consensus

import (
	"testing"

	"repro/internal/protocol"
)

var (
	acc5  = []protocol.SiteID{"A", "B", "C", "D", "E"}
	parts = []protocol.SiteID{"B", "D"}
)

func accepted(from protocol.SiteID, ballot uint32, insts ...protocol.PaxosInst) protocol.Message {
	return protocol.Message{Kind: protocol.MsgPaxosAccepted, From: from, Ballot: ballot, PaxosState: insts}
}

func inst(site protocol.SiteID, ballot uint32, v protocol.Vote) protocol.PaxosInst {
	return protocol.PaxosInst{Instance: site, Ballot: ballot, Vote: v}
}

func TestQuorumAndAcceptors(t *testing.T) {
	for n, q := range map[int]int{1: 1, 2: 2, 3: 2, 4: 3, 5: 3, 7: 4} {
		if got := Quorum(n); got != q {
			t.Errorf("Quorum(%d) = %d, want %d", n, got, q)
		}
	}
	// Default group: largest odd prefix ≤ 5 of the sorted membership.
	if got := Acceptors([]protocol.SiteID{"C", "A", "B"}, 0); len(got) != 3 || got[0] != "A" {
		t.Errorf("Acceptors 3 sites = %v", got)
	}
	if got := Acceptors([]protocol.SiteID{"F", "E", "D", "C", "B", "A"}, 0); len(got) != 5 || got[4] != "E" {
		t.Errorf("Acceptors 6 sites = %v", got)
	}
	// Even requests round down to 2F+1.
	if got := Acceptors(acc5, 4); len(got) != 3 {
		t.Errorf("Acceptors want=4 = %v", got)
	}
}

func TestBallotAbove(t *testing.T) {
	// Site series are disjoint: site 0 of 5 uses 6, 11, 16, …; site 2
	// uses 8, 13, 18, …
	if b := BallotAbove(0, 0, 5); b != 6 {
		t.Errorf("first ballot of site 0 = %d", b)
	}
	if b := BallotAbove(6, 0, 5); b != 11 {
		t.Errorf("second ballot of site 0 = %d", b)
	}
	if b := BallotAbove(9, 2, 5); b != 13 {
		t.Errorf("site 2 above 9 = %d", b)
	}
	seen := map[uint32]bool{}
	for site := 0; site < 5; site++ {
		b := uint32(0)
		for i := 0; i < 4; i++ {
			b = BallotAbove(b, site, 5)
			if seen[b] {
				t.Fatalf("ballot %d issued twice", b)
			}
			seen[b] = true
		}
	}
}

// TestBallot0Commit: the fast path — every participant's Prepared vote
// reaches a quorum of acceptors and the collector decides commit.
func TestBallot0Commit(t *testing.T) {
	l := NewBallot0("t1", "A", acc5, parts)
	for _, a := range []protocol.SiteID{"A", "B"} {
		if l.OnAccepted(a, accepted(a, 0, inst("B", 0, protocol.VotePrepared), inst("D", 0, protocol.VotePrepared))) {
			t.Fatal("decided before quorum")
		}
	}
	if !l.OnAccepted("C", accepted("C", 0, inst("B", 0, protocol.VotePrepared), inst("D", 0, protocol.VotePrepared))) {
		t.Fatal("third acceptor should complete the quorum")
	}
	committed, ok := l.Decided()
	if !ok || !committed {
		t.Fatalf("Decided() = %v, %v; want commit", committed, ok)
	}
}

// TestBallot0Abort: one instance choosing Aborted decides abort, even
// with the other instance unresolved.
func TestBallot0Abort(t *testing.T) {
	l := NewBallot0("t1", "A", acc5, parts)
	for _, a := range []protocol.SiteID{"A", "B"} {
		l.OnAccepted(a, accepted(a, 0, inst("D", 0, protocol.VoteAborted)))
	}
	if !l.OnAccepted("C", accepted("C", 0, inst("D", 0, protocol.VoteAborted))) {
		t.Fatal("quorum of aborted accepts should decide")
	}
	if committed, ok := l.Decided(); !ok || committed {
		t.Fatalf("Decided() = %v, %v; want abort", committed, ok)
	}
}

// TestBallot0NoCommitWithoutAllInstances: a quorum for one instance is
// not a decision while the other instance is free.
func TestBallot0NoCommitWithoutAllInstances(t *testing.T) {
	l := NewBallot0("t1", "A", acc5, parts)
	for _, a := range acc5 {
		l.OnAccepted(a, accepted(a, 0, inst("B", 0, protocol.VotePrepared)))
	}
	if _, ok := l.Decided(); ok {
		t.Fatal("decided with instance D still free")
	}
}

// TestTakeoverRevealsPrepared: a takeover leader must re-propose
// revealed Prepared votes and end in commit when ballot 0 had silently
// succeeded.
func TestTakeoverRevealsPrepared(t *testing.T) {
	l, msgs := NewTakeover("t1", "B", acc5, 7, []protocol.SiteID{"B"})
	if len(msgs) != 5 || msgs[0].Kind != protocol.MsgPaxosPrepare || msgs[0].Ballot != 7 {
		t.Fatalf("phase 1a messages: %v", msgs)
	}
	promise := func(from protocol.SiteID) protocol.Message {
		return protocol.Message{
			Kind: protocol.MsgPaxosPromise, From: from, Ballot: 7,
			Coordinator: "A", Participants: parts,
			PaxosState: []protocol.PaxosInst{
				inst("B", 0, protocol.VotePrepared), inst("D", 0, protocol.VotePrepared),
			},
		}
	}
	if out := l.OnPromise("A", promise("A")); out != nil {
		t.Fatal("proposed before promise quorum")
	}
	out := l.OnPromise("B", promise("B"))
	if out != nil {
		t.Fatal("proposed at 2 of 5 promises")
	}
	out = l.OnPromise("C", promise("C"))
	if len(out) != 5 || out[0].Kind != protocol.MsgPaxosAccept {
		t.Fatalf("phase 2a after quorum: %v", out)
	}
	for _, in := range out[0].PaxosState {
		if in.Vote != protocol.VotePrepared || in.Ballot != 7 {
			t.Fatalf("proposal must carry revealed Prepared at ballot 7: %+v", in)
		}
	}
	if l.Coordinator() != "A" {
		t.Errorf("coordinator not learned: %q", l.Coordinator())
	}
	for i, a := range acc5 {
		done := l.OnAccepted(a, accepted(a, 7, inst("B", 7, protocol.VotePrepared), inst("D", 7, protocol.VotePrepared)))
		if done != (i == 2) {
			t.Fatalf("acceptor %d: done=%v", i, done)
		}
		if i == 2 {
			break
		}
	}
	if committed, ok := l.Decided(); !ok || !committed {
		t.Fatal("takeover over a prepared ballot 0 must commit")
	}
}

// TestTakeoverAbortsFreeInstances: nothing revealed → the leader
// proposes Aborted for its seed instance and decides abort.
func TestTakeoverAbortsFreeInstances(t *testing.T) {
	l, _ := NewTakeover("t1", "B", acc5, 7, []protocol.SiteID{"B"})
	empty := func(from protocol.SiteID) protocol.Message {
		return protocol.Message{Kind: protocol.MsgPaxosPromise, From: from, Ballot: 7}
	}
	l.OnPromise("A", empty("A"))
	l.OnPromise("B", empty("B"))
	out := l.OnPromise("C", empty("C"))
	if len(out) != 5 {
		t.Fatalf("phase 2a: %v", out)
	}
	if len(out[0].PaxosState) != 1 || out[0].PaxosState[0].Vote != protocol.VoteAborted {
		t.Fatalf("free instance must be proposed Aborted: %+v", out[0].PaxosState)
	}
	if len(out[0].Participants) != 0 {
		t.Fatalf("no registrar revealed, none may be asserted: %v", out[0].Participants)
	}
	for i, a := range acc5[:3] {
		done := l.OnAccepted(a, accepted(a, 7, inst("B", 7, protocol.VoteAborted)))
		if done != (i == 2) {
			t.Fatalf("acceptor %d: done=%v", i, done)
		}
	}
	if committed, ok := l.Decided(); !ok || committed {
		t.Fatal("free-instance takeover must abort")
	}
}

// TestTakeoverMixedRevealKeepsHighestBallot: per-instance, the value at
// the highest revealed ballot wins.
func TestTakeoverMixedRevealKeepsHighestBallot(t *testing.T) {
	l, _ := NewTakeover("t1", "D", acc5, 9, []protocol.SiteID{"D"})
	l.OnPromise("A", protocol.Message{
		Kind: protocol.MsgPaxosPromise, From: "A", Ballot: 9, Participants: parts, Coordinator: "A",
		PaxosState: []protocol.PaxosInst{inst("B", 0, protocol.VotePrepared)},
	})
	l.OnPromise("B", protocol.Message{
		Kind: protocol.MsgPaxosPromise, From: "B", Ballot: 9,
		PaxosState: []protocol.PaxosInst{inst("B", 7, protocol.VoteAborted)},
	})
	out := l.OnPromise("C", protocol.Message{Kind: protocol.MsgPaxosPromise, From: "C", Ballot: 9})
	votes := map[protocol.SiteID]protocol.Vote{}
	for _, in := range out[0].PaxosState {
		votes[in.Instance] = in.Vote
	}
	if votes["B"] != protocol.VoteAborted {
		t.Errorf("instance B: ballot-7 Aborted must shadow ballot-0 Prepared, got %v", votes["B"])
	}
	if votes["D"] != protocol.VoteAborted {
		t.Errorf("instance D never voted; must be proposed Aborted, got %v", votes["D"])
	}
}

// TestRejectSupersedes: a reject kills the leader; stale replies are
// ignored and the caller learns the escalation floor.
func TestRejectSupersedes(t *testing.T) {
	l, _ := NewTakeover("t1", "B", acc5, 7, []protocol.SiteID{"B"})
	l.OnReject(12)
	if l.Superseded() != 12 {
		t.Fatalf("superseded = %d", l.Superseded())
	}
	if out := l.OnPromise("A", protocol.Message{Kind: protocol.MsgPaxosPromise, From: "A", Ballot: 7}); out != nil {
		t.Fatal("superseded leader still proposing")
	}
	if b := BallotAbove(l.Superseded(), 1, 5); b != 17 {
		t.Errorf("escalation ballot = %d, want 17", b)
	}
}

// TestStaleBallotIgnored: replies for other ballots never count.
func TestStaleBallotIgnored(t *testing.T) {
	l := NewBallot0("t1", "A", acc5, parts)
	for _, a := range acc5 {
		l.OnAccepted(a, accepted(a, 3, inst("B", 3, protocol.VotePrepared), inst("D", 3, protocol.VotePrepared)))
	}
	if _, ok := l.Decided(); ok {
		t.Fatal("decided from mismatched-ballot replies")
	}
}

// TestResend re-emits only what is missing, per phase.
func TestResend(t *testing.T) {
	l, _ := NewTakeover("t1", "B", acc5, 7, []protocol.SiteID{"B"})
	l.OnPromise("A", protocol.Message{Kind: protocol.MsgPaxosPromise, From: "A", Ballot: 7})
	re := l.Resend()
	if len(re) != 4 {
		t.Fatalf("phase-1 resend to 4 unpromised acceptors, got %d", len(re))
	}
	l.OnPromise("B", protocol.Message{Kind: protocol.MsgPaxosPromise, From: "B", Ballot: 7})
	l.OnPromise("C", protocol.Message{Kind: protocol.MsgPaxosPromise, From: "C", Ballot: 7})
	l.OnAccepted("A", accepted("A", 7, inst("B", 7, protocol.VoteAborted)))
	re = l.Resend()
	if len(re) != 4 {
		t.Fatalf("phase-2 resend to 4 unaccepted acceptors, got %d", len(re))
	}
	for _, m := range re {
		if m.Kind != protocol.MsgPaxosAccept || m.To == "A" {
			t.Fatalf("bad resend %v", m)
		}
	}
	// Ballot-0 collectors cannot resend the participants' votes.
	b0 := NewBallot0("t1", "A", acc5, parts)
	if re := b0.Resend(); re != nil {
		t.Fatalf("ballot-0 resend = %v", re)
	}
}
