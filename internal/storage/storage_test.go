package storage

import (
	"bytes"
	"testing"

	"repro/internal/polyvalue"
	"repro/internal/value"
)

func poly(t, newV, oldV int64) polyvalue.Poly {
	return polyvalue.Uncertain("T9", polyvalue.Simple(value.Int(newV)), polyvalue.Simple(value.Int(oldV)))
}

func TestPutGet(t *testing.T) {
	s := NewStore()
	if err := s.Put("x", polyvalue.Simple(value.Int(7))); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get("x").IsCertain(); !ok || !v.Equal(value.Int(7)) {
		t.Errorf("Get = %v", s.Get("x"))
	}
	if !s.Has("x") || s.Has("y") {
		t.Error("Has wrong")
	}
	// Missing item reads Nil.
	if v, ok := s.Get("missing").IsCertain(); !ok || !v.Equal(value.Nil{}) {
		t.Errorf("missing item = %v", s.Get("missing"))
	}
}

func TestItemsAndPolyItems(t *testing.T) {
	s := NewStore()
	s.Put("b", polyvalue.Simple(value.Int(1)))
	s.Put("a", poly(9, 1, 2))
	items := s.Items()
	if len(items) != 2 || items[0] != "a" || items[1] != "b" {
		t.Errorf("Items = %v", items)
	}
	pi := s.PolyItems()
	if len(pi) != 1 || pi[0] != "a" {
		t.Errorf("PolyItems = %v", pi)
	}
}

func TestPreparedLifecycle(t *testing.T) {
	s := NewStore()
	p := Prepared{
		TID: "T1", Coordinator: "siteA",
		Writes:   map[string]polyvalue.Poly{"x": polyvalue.Simple(value.Int(5))},
		Previous: map[string]polyvalue.Poly{"x": polyvalue.Simple(value.Int(1))},
	}
	if err := s.MarkPrepared(p); err != nil {
		t.Fatal(err)
	}
	got, ok := s.GetPrepared("T1")
	if !ok || got.Coordinator != "siteA" {
		t.Fatalf("GetPrepared = %+v, %v", got, ok)
	}
	if v, _ := got.Writes["x"].IsCertain(); !v.Equal(value.Int(5)) {
		t.Errorf("writes = %v", got.Writes)
	}
	if n := len(s.PreparedTxns()); n != 1 {
		t.Errorf("PreparedTxns = %d", n)
	}
	if err := s.ClearPrepared("T1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetPrepared("T1"); ok {
		t.Error("prepared entry survived clear")
	}
}

func TestOutcomes(t *testing.T) {
	s := NewStore()
	if _, known := s.Outcome("T1"); known {
		t.Error("unknown outcome reported known")
	}
	if err := s.SetOutcome("T1", true); err != nil {
		t.Fatal(err)
	}
	if c, known := s.Outcome("T1"); !known || !c {
		t.Errorf("Outcome = %v,%v", c, known)
	}
	// Idempotent same-value set.
	if err := s.SetOutcome("T1", true); err != nil {
		t.Errorf("idempotent SetOutcome errored: %v", err)
	}
	// Conflicting outcome is a protocol violation.
	if err := s.SetOutcome("T1", false); err == nil {
		t.Error("conflicting outcome accepted")
	}
	s.ForgetOutcome("T1")
	if _, known := s.Outcome("T1"); known {
		t.Error("outcome survived ForgetOutcome")
	}
}

func TestDependencyTable(t *testing.T) {
	s := NewStore()
	s.AddDepItem("T1", "x")
	s.AddDepItem("T1", "y")
	s.AddDepSite("T1", "site2")
	items, sites := s.Deps("T1")
	if len(items) != 2 || items[0] != "x" || items[1] != "y" {
		t.Errorf("dep items = %v", items)
	}
	if len(sites) != 1 || sites[0] != "site2" {
		t.Errorf("dep sites = %v", sites)
	}
	if tids := s.DepTIDs(); len(tids) != 1 || tids[0] != "T1" {
		t.Errorf("DepTIDs = %v", tids)
	}
	if err := s.AddDepSite("T1", ""); err == nil {
		t.Error("empty site accepted")
	}
	s.ClearDeps("T1")
	if items, sites := s.Deps("T1"); items != nil || sites != nil {
		t.Error("deps survived clear")
	}
}

func TestCrashRecovery(t *testing.T) {
	s := NewStore()
	s.Put("x", polyvalue.Simple(value.Int(1)))
	s.Put("x", poly(9, 2, 1)) // overwrite with uncertainty
	s.MarkPrepared(Prepared{
		TID: "T2", Coordinator: "c",
		Writes:   map[string]polyvalue.Poly{"y": polyvalue.Simple(value.Int(10))},
		Previous: map[string]polyvalue.Poly{"y": polyvalue.Simple(value.Nil{})},
	})
	s.SetOutcome("T3", false)
	s.AddDepItem("T9", "x")
	s.AddDepSite("T9", "other")

	// Crash: all that survives is the WAL.
	r, err := Recover(s.WALBytes())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Get("x").Equal(s.Get("x")) {
		t.Errorf("recovered x = %v", r.Get("x"))
	}
	if _, ok := r.GetPrepared("T2"); !ok {
		t.Error("prepared entry lost in recovery — in-doubt txn would be forgotten")
	}
	if c, known := r.Outcome("T3"); !known || c {
		t.Error("outcome lost in recovery")
	}
	items, sites := r.Deps("T9")
	if len(items) != 1 || len(sites) != 1 {
		t.Errorf("deps lost: %v %v", items, sites)
	}
	// The recovered store keeps logging: mutate and recover again.
	r.Put("z", polyvalue.Simple(value.Int(5)))
	r2, err := Recover(r.WALBytes())
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Has("z") || !r2.Has("x") {
		t.Error("second-generation recovery lost data")
	}
}

func TestTornTailIgnored(t *testing.T) {
	s := NewStore()
	s.Put("x", polyvalue.Simple(value.Int(1)))
	s.Put("y", polyvalue.Simple(value.Int(2)))
	data := s.WALBytes()
	// Simulate a torn final write.
	for cut := 1; cut < 8 && cut < len(data); cut++ {
		r, err := Recover(data[:len(data)-cut])
		if err != nil {
			t.Fatalf("torn tail (cut %d) errored: %v", cut, err)
		}
		if !r.Has("x") {
			t.Errorf("cut %d lost intact first record", cut)
		}
		if r.Has("y") {
			t.Errorf("cut %d resurrected torn record", cut)
		}
	}
}

func TestMidLogCorruptionDetected(t *testing.T) {
	s := NewStore()
	s.Put("x", polyvalue.Simple(value.Int(1)))
	s.Put("y", polyvalue.Simple(value.Int(2)))
	data := append([]byte{}, s.WALBytes()...)
	data[3] ^= 0xff // flip a byte inside the first record
	if _, err := Recover(data); err == nil {
		t.Error("mid-log corruption not detected")
	}
}

func TestCheckpointCompacts(t *testing.T) {
	s := NewStore()
	for i := 0; i < 100; i++ {
		s.Put("x", polyvalue.Simple(value.Int(int64(i))))
	}
	s.AddDepItem("T1", "x")
	s.AddDepSite("T1", "s2")
	s.MarkPrepared(Prepared{TID: "T5", Coordinator: "c",
		Writes:   map[string]polyvalue.Poly{"x": polyvalue.Simple(value.Int(1))},
		Previous: map[string]polyvalue.Poly{"x": polyvalue.Simple(value.Int(0))}})
	s.SetOutcome("T6", true)
	before := len(s.WALBytes())
	n, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if n >= before {
		t.Errorf("checkpoint did not shrink log: %d -> %d", before, n)
	}
	r, err := Recover(s.WALBytes())
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := r.Get("x").IsCertain(); !v.Equal(value.Int(99)) {
		t.Errorf("post-checkpoint x = %v", r.Get("x"))
	}
	if _, ok := r.GetPrepared("T5"); !ok {
		t.Error("checkpoint dropped prepared entry")
	}
	if _, known := r.Outcome("T6"); !known {
		t.Error("checkpoint dropped outcome")
	}
	if items, sites := r.Deps("T1"); len(items) != 1 || len(sites) != 1 {
		t.Error("checkpoint dropped deps")
	}
}

func TestWALSink(t *testing.T) {
	var sink bytes.Buffer
	w := NewWALWithSink(&sink)
	s := NewStoreWithWAL(w)
	s.Put("x", polyvalue.Simple(value.Int(1)))
	if !bytes.Equal(sink.Bytes(), s.WALBytes()) {
		t.Error("sink diverged from in-memory log")
	}
	// Recovery from the sink's contents works identically.
	r, err := Recover(sink.Bytes())
	if err != nil || !r.Has("x") {
		t.Errorf("recover from sink: %v", err)
	}
}

func TestReplayEmptyAndGarbage(t *testing.T) {
	if n, err := Replay(nil, func(Record) error { return nil }); n != 0 || err != nil {
		t.Errorf("empty replay = %d,%v", n, err)
	}
	// Pure garbage that doesn't frame: treated as torn tail.
	if n, err := Replay([]byte{0xff, 0xff, 0xff}, func(Record) error { return nil }); n != 0 || err != nil {
		t.Errorf("garbage replay = %d,%v", n, err)
	}
}
