package storage

import (
	"testing"

	"repro/internal/polyvalue"
	"repro/internal/value"
)

func TestHasDeps(t *testing.T) {
	s := NewStore()
	if s.HasDeps("T1") {
		t.Error("empty store has deps")
	}
	s.AddDepItem("T1", "x")
	if !s.HasDeps("T1") {
		t.Error("HasDeps false after AddDepItem")
	}
	s.ClearDeps("T1")
	if s.HasDeps("T1") {
		t.Error("HasDeps true after clear")
	}
	// Removing the last site deletes the entry.
	s.AddDepSite("T2", "s1")
	if !s.HasDeps("T2") {
		t.Error("HasDeps false after AddDepSite")
	}
	s.RemoveDepSite("T2", "s1")
	if s.HasDeps("T2") {
		t.Error("entry survived last-site removal")
	}
	// Removing from an absent entry is a no-op.
	if err := s.RemoveDepSite("T9", "s1"); err != nil {
		t.Errorf("no-op removal errored: %v", err)
	}
	// An entry with items AND sites survives site removal.
	s.AddDepItem("T3", "x")
	s.AddDepSite("T3", "s1")
	s.AddDepSite("T3", "s2")
	s.RemoveDepSite("T3", "s1")
	if !s.HasDeps("T3") {
		t.Error("entry with remaining site deleted early")
	}
	items, sitesLeft := s.Deps("T3")
	if len(items) != 1 || len(sitesLeft) != 1 || sitesLeft[0] != "s2" {
		t.Errorf("Deps = %v, %v", items, sitesLeft)
	}
}

// TestDecodePayloadCorruption hits every record kind's truncation
// branches: encode each kind, then feed every strict prefix of the
// payload to the decoder — none may panic, all must error or be caught
// by framing.
func TestDecodePayloadCorruption(t *testing.T) {
	records := []Record{
		{Kind: RecPut, Item: "item", Poly: polyvalue.Simple(value.Int(1))},
		{Kind: RecPrepared, TID: "T1", Coordinator: "c",
			Writes:   map[string]polyvalue.Poly{"x": polyvalue.Simple(value.Int(1))},
			Previous: map[string]polyvalue.Poly{"x": polyvalue.Simple(value.Int(0))}},
		{Kind: RecResolved, TID: "T1"},
		{Kind: RecOutcome, TID: "T1", Committed: true},
		{Kind: RecDepItem, TID: "T1", Item: "x"},
		{Kind: RecDepSite, TID: "T1", Site: "s"},
		{Kind: RecDepSiteDone, TID: "T1", Site: "s"},
		{Kind: RecDepClear, TID: "T1"},
		{Kind: RecAwait, TID: "T1", Coordinator: "c"},
		{Kind: RecAwaitDone, TID: "T1"},
	}
	for _, rec := range records {
		payload := rec.encodePayload()
		// The full payload decodes to the same kind.
		back, err := decodePayload(payload)
		if err != nil {
			t.Fatalf("kind %d: full payload rejected: %v", rec.Kind, err)
		}
		if back.Kind != rec.Kind {
			t.Fatalf("kind %d decoded as %d", rec.Kind, back.Kind)
		}
		// Every strict prefix errors (or decodes a smaller valid record,
		// which framing prevents in practice; here we only require no
		// panic and structured errors for the truncations that fail).
		for cut := 0; cut < len(payload); cut++ {
			_, _ = decodePayload(payload[:cut])
		}
	}
	if _, err := decodePayload(nil); err == nil {
		t.Error("empty payload accepted")
	}
	if _, err := decodePayload([]byte{255}); err == nil {
		t.Error("unknown kind accepted")
	}
}

// TestStoreRecordsRoundTripThroughReplay re-applies every record kind
// through a full WAL cycle.
func TestStoreRecordsRoundTripThroughReplay(t *testing.T) {
	s := NewStore()
	s.Put("x", polyvalue.Simple(value.Int(1)))
	s.AddDepItem("T1", "x")
	s.AddDepSite("T1", "s1")
	s.AddDepSite("T1", "s2")
	s.RemoveDepSite("T1", "s1")
	s.SetAwait("T2", "c")
	s.ClearAwait("T2")
	s.SetOutcome("T3", false)
	s.ForgetOutcome("T3") // memory-only; the WAL keeps the record
	r, err := Recover(s.WALBytes())
	if err != nil {
		t.Fatal(err)
	}
	_, sites := r.Deps("T1")
	if len(sites) != 1 || sites[0] != "s2" {
		t.Errorf("recovered dep sites = %v", sites)
	}
	if _, ok := r.Await("T2"); ok {
		t.Error("cleared await recovered")
	}
	// ForgetOutcome is volatile: replay resurrects the outcome, which is
	// safe (outcomes are immutable facts).
	if c, known := r.Outcome("T3"); !known || c {
		t.Errorf("outcome after replay = %v,%v", c, known)
	}
}
