package storage

import (
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestGroupLogStickyFsyncFailure pins the fsyncgate contract: after one
// injected fsync failure, every parked waiter fails, every later append
// fails, and Flush never again reports clean — the group log is dead
// for the rest of the incarnation, and recovery must come from disk.
func TestGroupLogStickyFsyncFailure(t *testing.T) {
	ffs := NewFaultFS(OSFS, FaultFSConfig{Seed: 11})
	f, err := OpenFileLogFS(ffs, filepath.Join(t.TempDir(), "group.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// A long window keeps the background flusher out of the way: the
	// test drives flushes explicitly through WaitSynced/Flush.
	g := NewGroupLog(f, time.Hour)
	defer g.Close()

	// Park several waiters on frames that will never sync.
	const waiters = 4
	var seqs []uint64
	for i := 0; i < waiters; i++ {
		if _, err := g.Write([]byte("frame")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		seqs = append(seqs, g.Seq())
	}
	errs := make(chan error, waiters)
	var wg sync.WaitGroup
	for _, seq := range seqs {
		wg.Add(1)
		go func(seq uint64) {
			defer wg.Done()
			errs <- g.WaitSynced(seq)
		}(seq)
	}
	// Let the waiters park, then fail the one flush they all depend on.
	time.Sleep(10 * time.Millisecond)
	ffs.SetRule(DiskRule{Kind: DiskFsync, P: 1, Once: true})
	if err := g.Flush(); !IsInjected(err) {
		t.Fatalf("Flush should fail with the injected fault, got %v", err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err == nil {
			t.Fatal("a parked waiter was released clean across a failed fsync")
		}
		if !IsInjected(err) {
			t.Fatalf("waiter error should carry the injected fault: %v", err)
		}
	}

	// The rule was one-shot, but the failure is sticky: later appends
	// and flushes must keep failing even though the disk is healthy
	// again.
	if _, err := g.Write([]byte("after")); err == nil {
		t.Fatal("append after failed fsync must fail")
	}
	if err := g.Flush(); err == nil {
		t.Fatal("Flush reported clean after a failed fsync")
	}
	if err := g.WaitSynced(g.Seq()); err == nil {
		t.Fatal("WaitSynced reported clean after a failed fsync")
	}
}
