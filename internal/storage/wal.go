// Package storage implements a site's durable state: the items it holds
// (simple values or polyvalues), the set of prepared-but-unresolved
// transactions, coordinator outcome records, and the §3.3 dependency
// table.  All mutations go through a write-ahead log so a crashed site
// restarts with exactly the state it had — in particular, a site that
// crashes while in doubt about a transaction discovers that fact from the
// log and installs polyvalues on restart instead of blocking.
package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"repro/internal/metrics"
	"repro/internal/polyvalue"
	"repro/internal/txn"
)

// ErrCorruptRecord reports a WAL record before the tail that fails its
// CRC or decodes to garbage — damage a clean crash cannot produce
// (torn tails end replay silently; this is bit rot or an overwrite).
// Replay and Recover wrap it with positional detail; match with
// errors.Is.
var ErrCorruptRecord = errors.New("storage: corrupt WAL record")

// RecKind enumerates WAL record types.
type RecKind uint8

const (
	// RecPut installs a (possibly poly) value for an item.
	RecPut RecKind = iota + 1
	// RecPrepared marks a transaction prepared at this site: computed
	// writes and previous values are retained so the site can later
	// install results, discard them, or build polyvalues.
	RecPrepared
	// RecResolved clears a prepared entry (the transaction completed,
	// aborted, or was converted to polyvalues here).
	RecResolved
	// RecOutcome durably records a commit/abort decision (coordinator
	// role, and participant's memo of learned outcomes).
	RecOutcome
	// RecDepItem notes that a local item's polyvalue depends on a
	// transaction's outcome.
	RecDepItem
	// RecDepSite notes that a polyvalue dependent on a transaction was
	// sent to another site, which must be informed of the outcome (§3.3).
	RecDepSite
	// RecDepClear removes a transaction's dependency entry ("once this is
	// done, that site can forget the outcome of T and the table entry").
	RecDepClear
	// RecAwait records that this site installed polyvalues for a
	// transaction whose outcome it must still learn from the named
	// coordinator; survives crashes so the outcome-request loop resumes.
	RecAwait
	// RecAwaitDone clears an await entry once the outcome is known.
	RecAwaitDone
	// RecDepSiteDone removes one site from a dependency entry after that
	// site acknowledged the outcome notification; when the last site is
	// removed the whole entry is deleted.
	RecDepSiteDone
	// RecPaxosMeta records the registrar information an acceptor learned
	// for one transaction's Paxos Commit decision: the coordinator and
	// the participant set (the decision's instance set).  First write
	// wins; duplicates are ignored.
	RecPaxosMeta
	// RecPaxosPromise records an acceptor's phase-1 promise for a
	// transaction: no ballot below Ballot will be accepted for any of
	// its instances.  Monotonic; a lower ballot is a no-op.
	RecPaxosPromise
	// RecPaxosAccept records an acceptor's phase-2 acceptance of a vote
	// at a ballot for one instance (the participant named in Site).
	// Survives acceptor restarts — the whole point of the plane.
	RecPaxosAccept
	// RecPaxosClear drops a transaction's acceptor state once its
	// decision is learned and durably recorded as an outcome.
	RecPaxosClear
	// RecVersion sets an item's committed replica version (quorum
	// replication).  Monotonic: a version at or below the current one is
	// ignored on apply, so replay is idempotent.
	RecVersion
	// RecVerPending records the versions a prepared transaction will
	// install for its written items if it commits.  The pending table
	// makes version assignment crash-safe: a restarted site still reports
	// effective versions that cover its in-doubt transactions.
	RecVerPending
	// RecVerDone clears a transaction's pending-version entry once its
	// outcome settles (the committed versions, if any, are logged as
	// RecVersion records first).
	RecVerDone
)

// Record is one WAL entry.  Fields beyond Kind are populated per kind.
type Record struct {
	Kind RecKind

	// RecPut, RecDepItem: the item.
	Item string
	// RecPut: the installed value.
	Poly polyvalue.Poly

	// RecPrepared, RecResolved, RecOutcome, RecDep*: the transaction.
	TID txn.ID
	// RecPrepared: computed new values and previous values per item.
	Writes   map[string]polyvalue.Poly
	Previous map[string]polyvalue.Poly
	// RecPrepared: the coordinator to query for the outcome.
	Coordinator string

	// RecOutcome: the decision.
	Committed bool

	// RecDepSite: the site that received a dependent polyvalue.
	// RecPaxosAccept: the instance (participant) the vote is for.
	Site string

	// RecPaxosMeta: the participant set.
	Sites []string
	// RecPaxosPromise, RecPaxosAccept: the ballot.
	Ballot uint32
	// RecPaxosAccept: the accepted vote (protocol.Vote numbering).
	Vote uint8

	// RecVersion: the item's new committed version.
	Ver uint64
	// RecVerPending: item → version the transaction installs on commit.
	Vers map[string]uint64
}

// appendPolyMap encodes a map of item → polyvalue deterministically
// (sorted keys).
func appendPolyMap(dst []byte, m map[string]polyvalue.Poly) []byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = appendString(dst, k)
		dst = m[k].AppendBinary(dst)
	}
	return dst
}

func decodePolyMap(buf []byte) (map[string]polyvalue.Poly, int, error) {
	n, off := binary.Uvarint(buf)
	if off <= 0 {
		return nil, 0, fmt.Errorf("storage: truncated map size")
	}
	if n > uint64(len(buf)) {
		return nil, 0, fmt.Errorf("storage: map size %d exceeds input", n)
	}
	m := make(map[string]polyvalue.Poly, n)
	for i := uint64(0); i < n; i++ {
		k, kn, err := decodeString(buf[off:])
		if err != nil {
			return nil, 0, err
		}
		off += kn
		p, pn, err := polyvalue.DecodeBinary(buf[off:])
		if err != nil {
			return nil, 0, err
		}
		off += pn
		m[k] = p
	}
	return m, off, nil
}

// appendVerMap encodes a map of item → version deterministically
// (sorted keys).
func appendVerMap(dst []byte, m map[string]uint64) []byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = appendString(dst, k)
		dst = binary.AppendUvarint(dst, m[k])
	}
	return dst
}

func decodeVerMap(buf []byte) (map[string]uint64, int, error) {
	n, off := binary.Uvarint(buf)
	if off <= 0 {
		return nil, 0, fmt.Errorf("storage: truncated map size")
	}
	if n > uint64(len(buf)) {
		return nil, 0, fmt.Errorf("storage: map size %d exceeds input", n)
	}
	m := make(map[string]uint64, n)
	for i := uint64(0); i < n; i++ {
		k, kn, err := decodeString(buf[off:])
		if err != nil {
			return nil, 0, err
		}
		off += kn
		v, vn := binary.Uvarint(buf[off:])
		if vn <= 0 {
			return nil, 0, fmt.Errorf("storage: truncated version")
		}
		off += vn
		m[k] = v
	}
	return m, off, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func decodeString(buf []byte) (string, int, error) {
	n, off := binary.Uvarint(buf)
	if off <= 0 {
		return "", 0, fmt.Errorf("storage: truncated string length")
	}
	if n > uint64(len(buf)-off) { // uint64 compare: no overflow
		return "", 0, fmt.Errorf("storage: truncated string")
	}
	return string(buf[off : off+int(n)]), off + int(n), nil
}

// encodePayload serializes the record body (without framing).
func (r Record) encodePayload() []byte {
	buf := []byte{byte(r.Kind)}
	switch r.Kind {
	case RecPut:
		buf = appendString(buf, r.Item)
		buf = r.Poly.AppendBinary(buf)
	case RecPrepared:
		buf = appendString(buf, string(r.TID))
		buf = appendString(buf, r.Coordinator)
		buf = appendPolyMap(buf, r.Writes)
		buf = appendPolyMap(buf, r.Previous)
	case RecResolved, RecDepClear, RecAwaitDone:
		buf = appendString(buf, string(r.TID))
	case RecAwait:
		buf = appendString(buf, string(r.TID))
		buf = appendString(buf, r.Coordinator)
	case RecOutcome:
		buf = appendString(buf, string(r.TID))
		if r.Committed {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	case RecDepItem:
		buf = appendString(buf, string(r.TID))
		buf = appendString(buf, r.Item)
	case RecDepSite, RecDepSiteDone:
		buf = appendString(buf, string(r.TID))
		buf = appendString(buf, r.Site)
	case RecPaxosMeta:
		buf = appendString(buf, string(r.TID))
		buf = appendString(buf, r.Coordinator)
		buf = binary.AppendUvarint(buf, uint64(len(r.Sites)))
		for _, s := range r.Sites {
			buf = appendString(buf, s)
		}
	case RecPaxosPromise:
		buf = appendString(buf, string(r.TID))
		buf = binary.AppendUvarint(buf, uint64(r.Ballot))
	case RecPaxosAccept:
		buf = appendString(buf, string(r.TID))
		buf = appendString(buf, r.Site)
		buf = binary.AppendUvarint(buf, uint64(r.Ballot))
		buf = append(buf, r.Vote)
	case RecPaxosClear:
		buf = appendString(buf, string(r.TID))
	case RecVersion:
		buf = appendString(buf, r.Item)
		buf = binary.AppendUvarint(buf, r.Ver)
	case RecVerPending:
		buf = appendString(buf, string(r.TID))
		buf = appendVerMap(buf, r.Vers)
	case RecVerDone:
		buf = appendString(buf, string(r.TID))
	}
	return buf
}

// decodePayload parses a record body.
func decodePayload(buf []byte) (Record, error) {
	if len(buf) == 0 {
		return Record{}, fmt.Errorf("storage: empty record")
	}
	r := Record{Kind: RecKind(buf[0])}
	body := buf[1:]
	off := 0
	readStr := func() (string, error) {
		s, n, err := decodeString(body[off:])
		off += n
		return s, err
	}
	switch r.Kind {
	case RecPut:
		item, err := readStr()
		if err != nil {
			return Record{}, err
		}
		r.Item = item
		p, _, err := polyvalue.DecodeBinary(body[off:])
		if err != nil {
			return Record{}, err
		}
		r.Poly = p
	case RecPrepared:
		tid, err := readStr()
		if err != nil {
			return Record{}, err
		}
		coord, err := readStr()
		if err != nil {
			return Record{}, err
		}
		r.TID, r.Coordinator = txn.ID(tid), coord
		w, n, err := decodePolyMap(body[off:])
		if err != nil {
			return Record{}, err
		}
		off += n
		prev, _, err := decodePolyMap(body[off:])
		if err != nil {
			return Record{}, err
		}
		r.Writes, r.Previous = w, prev
	case RecResolved, RecDepClear, RecAwaitDone:
		tid, err := readStr()
		if err != nil {
			return Record{}, err
		}
		r.TID = txn.ID(tid)
	case RecAwait:
		tid, err := readStr()
		if err != nil {
			return Record{}, err
		}
		coord, err := readStr()
		if err != nil {
			return Record{}, err
		}
		r.TID, r.Coordinator = txn.ID(tid), coord
	case RecOutcome:
		tid, err := readStr()
		if err != nil {
			return Record{}, err
		}
		r.TID = txn.ID(tid)
		if off >= len(body) {
			return Record{}, fmt.Errorf("storage: truncated outcome")
		}
		r.Committed = body[off] == 1
	case RecDepItem:
		tid, err := readStr()
		if err != nil {
			return Record{}, err
		}
		item, err := readStr()
		if err != nil {
			return Record{}, err
		}
		r.TID, r.Item = txn.ID(tid), item
	case RecDepSite, RecDepSiteDone:
		tid, err := readStr()
		if err != nil {
			return Record{}, err
		}
		site, err := readStr()
		if err != nil {
			return Record{}, err
		}
		r.TID, r.Site = txn.ID(tid), site
	case RecPaxosMeta:
		tid, err := readStr()
		if err != nil {
			return Record{}, err
		}
		coord, err := readStr()
		if err != nil {
			return Record{}, err
		}
		r.TID, r.Coordinator = txn.ID(tid), coord
		n, w := binary.Uvarint(body[off:])
		if w <= 0 || n > uint64(len(body)-off) {
			return Record{}, fmt.Errorf("storage: truncated participant count")
		}
		off += w
		r.Sites = make([]string, 0, n)
		for i := uint64(0); i < n; i++ {
			s, err := readStr()
			if err != nil {
				return Record{}, err
			}
			r.Sites = append(r.Sites, s)
		}
	case RecPaxosPromise:
		tid, err := readStr()
		if err != nil {
			return Record{}, err
		}
		r.TID = txn.ID(tid)
		b, w := binary.Uvarint(body[off:])
		if w <= 0 || b > 0xffffffff {
			return Record{}, fmt.Errorf("storage: bad promise ballot")
		}
		r.Ballot = uint32(b)
	case RecPaxosAccept:
		tid, err := readStr()
		if err != nil {
			return Record{}, err
		}
		site, err := readStr()
		if err != nil {
			return Record{}, err
		}
		r.TID, r.Site = txn.ID(tid), site
		b, w := binary.Uvarint(body[off:])
		if w <= 0 || b > 0xffffffff {
			return Record{}, fmt.Errorf("storage: bad accept ballot")
		}
		off += w
		r.Ballot = uint32(b)
		if off >= len(body) {
			return Record{}, fmt.Errorf("storage: truncated accept vote")
		}
		r.Vote = body[off]
	case RecPaxosClear, RecVerDone:
		tid, err := readStr()
		if err != nil {
			return Record{}, err
		}
		r.TID = txn.ID(tid)
	case RecVersion:
		item, err := readStr()
		if err != nil {
			return Record{}, err
		}
		r.Item = item
		v, w := binary.Uvarint(body[off:])
		if w <= 0 {
			return Record{}, fmt.Errorf("storage: truncated version")
		}
		r.Ver = v
	case RecVerPending:
		tid, err := readStr()
		if err != nil {
			return Record{}, err
		}
		r.TID = txn.ID(tid)
		m, _, err := decodeVerMap(body[off:])
		if err != nil {
			return Record{}, err
		}
		r.Vers = m
	default:
		return Record{}, fmt.Errorf("storage: unknown record kind %d", r.Kind)
	}
	return r, nil
}

// WAL frames records onto a byte stream: uvarint payload length, payload,
// 4-byte big-endian CRC32 of the payload.  Replay stops cleanly at a torn
// tail (truncated or CRC-failing final record), the standard contract for
// crash-consistent logs.
type WAL struct {
	buf bytes.Buffer
	// sink, when non-nil, receives every append immediately (e.g. a
	// file); the in-memory buffer remains the source of truth for
	// Bytes/Replay.
	sink io.Writer
	// appends/appendBytes, when set via Instrument, count every framed
	// record and its on-log size — each append is this log's
	// fsync-equivalent unit of durable work.
	appends     *metrics.Counter
	appendBytes *metrics.Counter
}

// Instrument attaches append counters (either may be nil).
func (w *WAL) Instrument(appends, appendBytes *metrics.Counter) {
	w.appends = appends
	w.appendBytes = appendBytes
}

// NewWAL returns an empty in-memory log.
func NewWAL() *WAL { return &WAL{} }

// NewWALWithSink mirrors every append to sink (e.g. an *os.File).
func NewWALWithSink(sink io.Writer) *WAL { return &WAL{sink: sink} }

// Append frames and stores one record.  The durable sink is written
// BEFORE the in-memory buffer: if the sink write fails (possibly
// tearing mid-frame on disk — which Replay tolerates as a torn tail),
// memory never runs ahead of what a restart would recover.
func (w *WAL) Append(r Record) error {
	payload := r.encodePayload()
	var frame []byte
	frame = binary.AppendUvarint(frame, uint64(len(payload)))
	frame = append(frame, payload...)
	frame = binary.BigEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	if w.sink != nil {
		if _, err := w.sink.Write(frame); err != nil {
			return fmt.Errorf("storage: wal sink: %w", err)
		}
	}
	if _, err := w.buf.Write(frame); err != nil {
		return err
	}
	if w.appends != nil {
		w.appends.Inc()
	}
	if w.appendBytes != nil {
		w.appendBytes.Add(int64(len(frame)))
	}
	return nil
}

// Bytes returns the full log contents.
func (w *WAL) Bytes() []byte { return w.buf.Bytes() }

// Len returns the log size in bytes.
func (w *WAL) Len() int { return w.buf.Len() }

// Reset discards the log contents (used by checkpointing).
func (w *WAL) Reset() { w.buf.Reset() }

// Replay decodes records from data, invoking fn for each, and returns the
// number of complete records replayed.  A torn tail (truncated frame or
// CRC mismatch on the final record) ends replay without error; corruption
// before the tail is reported as a wrapped ErrCorruptRecord, with every
// record before the damage already replayed.
func Replay(data []byte, fn func(Record) error) (int, error) {
	count := 0
	off := 0
	for off < len(data) {
		ln, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return count, nil // torn tail
		}
		// Compare in uint64 space: a hostile/corrupt length must not
		// overflow the int arithmetic below.
		if ln > uint64(len(data)-off-n) || len(data)-off-n-int(ln) < 4 {
			return count, nil // torn tail
		}
		payload := data[off+n : off+n+int(ln)]
		crc := binary.BigEndian.Uint32(data[off+n+int(ln):])
		if crc32.ChecksumIEEE(payload) != crc {
			if off+n+int(ln)+4 == len(data) {
				return count, nil // torn final record
			}
			return count, fmt.Errorf("%w: CRC mismatch at offset %d", ErrCorruptRecord, off)
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return count, fmt.Errorf("%w: record %d: %v", ErrCorruptRecord, count, err)
		}
		if err := fn(rec); err != nil {
			return count, err
		}
		count++
		off += n + int(ln) + 4
	}
	return count, nil
}
