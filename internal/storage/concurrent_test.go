package storage

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/polyvalue"
	"repro/internal/txn"
	"repro/internal/value"
)

// TestStoreConcurrentAccess hammers a store from many goroutines (run
// with -race): the mutex discipline must hold across every mutation
// path.
func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				item := fmt.Sprintf("item%d-%d", g, i%10)
				tid := txn.ID(fmt.Sprintf("T%d-%d", g, i%10))
				switch i % 7 {
				case 0:
					_ = s.Put(item, polyvalue.Simple(value.Int(int64(i))))
				case 1:
					_ = s.Get(item)
					_ = s.Items()
				case 2:
					_ = s.MarkPrepared(Prepared{TID: tid, Coordinator: "c",
						Writes:   map[string]polyvalue.Poly{item: polyvalue.Simple(value.Int(1))},
						Previous: map[string]polyvalue.Poly{item: polyvalue.Simple(value.Int(0))}})
					_ = s.ClearPrepared(tid)
				case 3:
					_ = s.SetOutcome(tid, true)
					_, _ = s.Outcome(tid)
				case 4:
					_ = s.AddDepItem(tid, item)
					_ = s.AddDepSite(tid, "s2")
					_, _ = s.Deps(tid)
					_ = s.RemoveDepSite(tid, "s2")
				case 5:
					_ = s.SetAwait(tid, "c")
					_, _ = s.Await(tid)
					_ = s.ClearAwait(tid)
				default:
					_ = s.PolyItems()
					_ = s.WALSize()
					_ = s.DepTIDs()
				}
			}
		}(g)
	}
	wg.Wait()
	// The log must still replay cleanly after the storm.
	if _, err := Recover(s.WALBytes()); err != nil {
		t.Fatalf("post-storm recovery: %v", err)
	}
}

// TestStoreConcurrentCheckpoint interleaves checkpoints with writers.
func TestStoreConcurrentCheckpoint(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = s.Put(fmt.Sprintf("x%d", i%20), polyvalue.Simple(value.Int(int64(i))))
		}
	}()
	for i := 0; i < 20; i++ {
		if _, err := s.Checkpoint(); err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if _, err := Recover(s.WALBytes()); err != nil {
		t.Fatalf("recovery after concurrent checkpoints: %v", err)
	}
}
