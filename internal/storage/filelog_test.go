package storage

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/polyvalue"
	"repro/internal/value"
)

func TestFileStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "site.wal")
	s, log, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("x", polyvalue.Simple(value.Int(7))); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkPrepared(Prepared{TID: "T1", Coordinator: "c",
		Writes:   map[string]polyvalue.Poly{"x": polyvalue.Simple(value.Int(9))},
		Previous: map[string]polyvalue.Poly{"x": polyvalue.Simple(value.Int(7))}}); err != nil {
		t.Fatal(err)
	}
	if err := log.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	// "Process restart": reopen from the same file.
	s2, log2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if v, ok := s2.Get("x").IsCertain(); !ok || !v.Equal(value.Int(7)) {
		t.Errorf("x = %v", s2.Get("x"))
	}
	if _, ok := s2.GetPrepared("T1"); !ok {
		t.Error("prepared entry lost across process restart")
	}
	// And the reopened store keeps appending to the same file.
	if err := s2.Put("y", polyvalue.Simple(value.Int(1))); err != nil {
		t.Fatal(err)
	}
	log2.Sync()
	s3, log3, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer log3.Close()
	if !s3.Has("y") || !s3.Has("x") {
		t.Error("third-generation recovery lost data")
	}
	if log3.Path() != path {
		t.Errorf("Path = %q", log3.Path())
	}
}

func TestFileStoreAbsentFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "absent.wal")
	s, log, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	if len(s.Items()) != 0 {
		t.Error("absent file yielded non-empty store")
	}
}

func TestFileStoreTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.wal")
	s, log, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("x", polyvalue.Simple(value.Int(1)))
	s.Put("y", polyvalue.Simple(value.Int(2)))
	log.Close()
	// Tear the last few bytes off, as a crash mid-write would.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	s2, log2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if !s2.Has("x") {
		t.Error("intact record lost")
	}
	if s2.Has("y") {
		t.Error("torn record resurrected")
	}
}

func TestCheckpointFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.wal")
	s, log, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		s.Put("x", polyvalue.Simple(value.Int(int64(i))))
	}
	big, _ := os.Stat(path)
	n, log2, err := CheckpointFile(s, log)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	small, _ := os.Stat(path)
	if small.Size() >= big.Size() || small.Size() != int64(n) {
		t.Errorf("checkpoint sizes: file %d -> %d, reported %d", big.Size(), small.Size(), n)
	}
	// Post-checkpoint appends land in the new file and recover cleanly.
	s.Put("z", polyvalue.Simple(value.Int(5)))
	log2.Sync()
	s2, log3, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer log3.Close()
	if v, ok := s2.Get("x").IsCertain(); !ok || !v.Equal(value.Int(199)) {
		t.Errorf("x = %v", s2.Get("x"))
	}
	if !s2.Has("z") {
		t.Error("post-checkpoint append lost")
	}
}

func TestOpenFileLogBadPath(t *testing.T) {
	if _, err := OpenFileLog(filepath.Join(t.TempDir(), "no", "such", "dir", "x.wal")); err == nil {
		t.Error("bad path accepted")
	}
	if _, _, err := OpenFileStore(filepath.Join(t.TempDir(), "no", "such", "dir", "x.wal")); err == nil {
		t.Error("bad path accepted by OpenFileStore")
	}
}
