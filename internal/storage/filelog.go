package storage

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// ErrTornWrite is the failure a log write armed with TearNext reports
// after persisting only a prefix of the frame — the on-disk image a
// power cut mid-append leaves behind.
var ErrTornWrite = errors.New("storage: injected torn write")

// IsTornWrite reports whether err is (or wraps) an injected torn write.
func IsTornWrite(err error) bool { return errors.Is(err, ErrTornWrite) }

// FileLog persists a site's WAL to a file.  Appends are written through
// to the file and synced on request; recovery reads the whole file and
// tolerates a torn tail, so a crash at any byte boundary is safe.
//
// The cluster runtime keeps its stores in memory (the simulated sites
// crash by dropping volatile state, not the process), but cmd tools and
// library users embedding a real site persist through this type.
type FileLog struct {
	f    *os.File
	path string
	// tear, when set, makes the next Write persist only the first half
	// of its input and fail — crash-point injection for mid-append
	// power loss (see TearNext).
	tear atomic.Bool
	// tornAt is the offset of an un-recovered torn fragment left by a
	// teared write, or -1.  The next successful Write truncates the
	// fragment first, exactly as crash recovery would, so the file never
	// accumulates garbage mid-stream.
	tornAt int64
}

// OpenFileLog opens (creating if needed) the log file for appending.
func OpenFileLog(path string) (*FileLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open log: %w", err)
	}
	return &FileLog{f: f, path: path, tornAt: -1}, nil
}

// Write implements io.Writer for use as a WAL sink.  An armed tear
// (TearNext) persists only the first half of p and reports ErrTornWrite.
// A later Write after a tear truncates the torn fragment first (the
// same repair crash recovery performs), keeping the file parseable.
func (l *FileLog) Write(p []byte) (int, error) {
	if l.tear.CompareAndSwap(true, false) {
		if st, err := l.f.Stat(); err == nil {
			l.tornAt = st.Size()
		}
		n, _ := l.f.Write(p[:len(p)/2])
		l.f.Sync()
		return n, ErrTornWrite
	}
	if l.tornAt >= 0 {
		if err := l.f.Truncate(l.tornAt); err != nil {
			return 0, fmt.Errorf("storage: truncate torn tail: %w", err)
		}
		l.tornAt = -1
	}
	return l.f.Write(p)
}

// TearNext arms a one-shot torn write: the next Write persists only
// half its bytes and fails, leaving the on-disk log with exactly the
// torn tail a crash mid-append produces.  Recovery must replay the
// intact prefix and drop the fragment.
func (l *FileLog) TearNext() { l.tear.Store(true) }

// Sync flushes to stable storage.
func (l *FileLog) Sync() error { return l.f.Sync() }

// Close syncs and closes the file.
func (l *FileLog) Close() error {
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// Path returns the log file's path.
func (l *FileLog) Path() string { return l.path }

// OpenFileStore recovers a store from the log file at path (an empty or
// absent file yields an empty store) and arranges for all further
// mutations to append to it.  The returned FileLog must be closed by the
// caller when the store is retired.
func OpenFileStore(path string) (*Store, *FileLog, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("storage: read log: %w", err)
	}
	recovered, err := Recover(data)
	if err != nil {
		return nil, nil, err
	}
	// A torn tail (crash mid-append) replays silently as the intact
	// prefix; truncate the fragment so appends resume on a clean
	// boundary instead of burying garbage mid-stream.
	if wb := recovered.WALBytes(); len(wb) < len(data) {
		if bytes.HasPrefix(data, wb) {
			if err := os.Truncate(path, int64(len(wb))); err != nil {
				return nil, nil, fmt.Errorf("storage: truncate torn tail: %w", err)
			}
		} else if err := atomicRewrite(path, wb); err != nil {
			return nil, nil, err
		}
	}
	log, err := OpenFileLog(path)
	if err != nil {
		return nil, nil, err
	}
	recovered.mu.Lock()
	recovered.wal.sink = log
	recovered.mu.Unlock()
	return recovered, log, nil
}

// atomicRewrite replaces the file at path with content via write-temp +
// rename, the crash-safe way to drop a corrupt or torn suffix whose
// prefix re-encoding diverged from the on-disk bytes.
func atomicRewrite(path string, content []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".wal-repair-*")
	if err != nil {
		return fmt.Errorf("storage: repair temp: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(content); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("storage: repair write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("storage: repair sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("storage: repair close: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("storage: repair rename: %w", err)
	}
	return nil
}

// CheckpointFile compacts the store's WAL and atomically replaces the
// log file with the compacted contents (write temp + rename), re-pointing
// the store's sink at the new file.  Returns the new log size.
func CheckpointFile(s *Store, log *FileLog) (int, *FileLog, error) {
	n, err := s.Checkpoint()
	if err != nil {
		return 0, log, err
	}
	dir := filepath.Dir(log.path)
	tmp, err := os.CreateTemp(dir, ".wal-checkpoint-*")
	if err != nil {
		return 0, log, fmt.Errorf("storage: checkpoint temp: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(s.WALBytes()); err != nil {
		cleanup()
		return 0, log, fmt.Errorf("storage: checkpoint write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return 0, log, fmt.Errorf("storage: checkpoint sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return 0, log, fmt.Errorf("storage: checkpoint close: %w", err)
	}
	if err := os.Rename(tmpName, log.path); err != nil {
		os.Remove(tmpName)
		return 0, log, fmt.Errorf("storage: checkpoint rename: %w", err)
	}
	path := log.path
	log.Close()
	fresh, err := OpenFileLog(path)
	if err != nil {
		return 0, nil, err
	}
	s.mu.Lock()
	s.wal.sink = fresh
	s.mu.Unlock()
	return n, fresh, nil
}
