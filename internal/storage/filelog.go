package storage

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// ErrTornWrite is the failure a log write armed with TearNext reports
// after persisting only a prefix of the frame — the on-disk image a
// power cut mid-append leaves behind.
var ErrTornWrite = errors.New("storage: injected torn write")

// IsTornWrite reports whether err is (or wraps) an injected torn write.
func IsTornWrite(err error) bool { return errors.Is(err, ErrTornWrite) }

// FileLog persists a site's WAL to a file.  Appends are written through
// to the file and synced on request; recovery reads the whole file and
// tolerates a torn tail, so a crash at any byte boundary is safe.
//
// Errors are sticky (the fsyncgate discipline): once a write or sync
// fails, the kernel may already have dropped the dirty pages this log
// believes are en route to disk, so every later Write/Sync fails with
// the first error until the log is reopened from the on-disk bytes.
// Torn writes are the one exception — they model a crash the caller is
// about to take anyway, and the torn fragment is repaired in place by
// the next write, so they do not poison the incarnation by themselves.
//
// The cluster runtime keeps its stores in memory (the simulated sites
// crash by dropping volatile state, not the process), but cmd tools and
// library users embedding a real site persist through this type.
type FileLog struct {
	fs   FS
	f    File
	path string
	// tear, when set, makes the next Write persist only the first half
	// of its input and fail — crash-point injection for mid-append
	// power loss (see TearNext).
	tear atomic.Bool
	// tornAt is the offset of an un-recovered torn fragment left by a
	// teared write, or -1.  The next successful Write truncates the
	// fragment first, exactly as crash recovery would, so the file never
	// accumulates garbage mid-stream.
	tornAt int64

	mu  sync.Mutex
	err error // first write/sync failure; everything after it fails too
}

// OpenFileLog opens (creating if needed) the log file for appending on
// the real filesystem.
func OpenFileLog(path string) (*FileLog, error) {
	return OpenFileLogFS(OSFS, path)
}

// OpenFileLogFS opens (creating if needed) the log file for appending
// through fsys.
func OpenFileLogFS(fsys FS, path string) (*FileLog, error) {
	if fsys == nil {
		fsys = OSFS
	}
	f, err := fsys.OpenAppend(path)
	if err != nil {
		return nil, fmt.Errorf("storage: open log: %w", err)
	}
	return &FileLog{fs: fsys, f: f, path: path, tornAt: -1}, nil
}

// Err returns the sticky failure, or nil while the log is healthy.
func (l *FileLog) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// setErr records the first failure; later calls keep the original.
func (l *FileLog) setErr(err error) {
	l.mu.Lock()
	if l.err == nil {
		l.err = err
	}
	l.mu.Unlock()
}

// Write implements io.Writer for use as a WAL sink.  An armed tear
// (TearNext) persists only the first half of p and reports ErrTornWrite.
// A later Write after a tear truncates the torn fragment first (the
// same repair crash recovery performs), keeping the file parseable.
func (l *FileLog) Write(p []byte) (int, error) {
	if err := l.Err(); err != nil {
		return 0, err
	}
	if l.tear.CompareAndSwap(true, false) {
		if st, err := l.f.Stat(); err == nil {
			l.tornAt = st.Size()
		}
		n, werr := l.f.Write(p[:len(p)/2])
		serr := l.f.Sync()
		if werr != nil || serr != nil {
			// The tear is the injected crash; a real write or sync
			// failure underneath it is a second, independent fault that
			// must poison the incarnation, not vanish into the tear.
			err := fmt.Errorf("%w (write: %v, sync: %v)", ErrTornWrite, werr, serr)
			l.setErr(err)
			return n, err
		}
		return n, ErrTornWrite
	}
	if l.tornAt >= 0 {
		if err := l.f.Truncate(l.tornAt); err != nil {
			err = fmt.Errorf("storage: truncate torn tail: %w", err)
			l.setErr(err)
			return 0, err
		}
		l.tornAt = -1
	}
	n, err := l.f.Write(p)
	if err != nil && !IsTornWrite(err) {
		l.setErr(err)
	}
	return n, err
}

// TearNext arms a one-shot torn write: the next Write persists only
// half its bytes and fails, leaving the on-disk log with exactly the
// torn tail a crash mid-append produces.  Recovery must replay the
// intact prefix and drop the fragment.
func (l *FileLog) TearNext() { l.tear.Store(true) }

// Sync flushes to stable storage.  A failure is sticky: the page cache
// can no longer be trusted to hold what the log thinks it wrote.
func (l *FileLog) Sync() error {
	if err := l.Err(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		l.setErr(err)
		return err
	}
	return nil
}

// Close syncs and closes the file.
func (l *FileLog) Close() error {
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// Path returns the log file's path.
func (l *FileLog) Path() string { return l.path }

// RecoverStats reports what OpenFileStoreFS had to do to produce a
// usable store from the on-disk image.
type RecoverStats struct {
	// CorruptReads counts read passes whose bytes were damaged in the
	// read path (a re-read disagreed and recovered more) — latent
	// sector / page-cache corruption the CRC framing caught.
	CorruptReads int
	// TornBytes is the size of the torn tail dropped from the log (a
	// crash mid-append), 0 when the image was clean.
	TornBytes int
	// Quarantined is the path the damaged image was preserved at when
	// mid-stream corruption was confirmed on the medium, "" otherwise.
	Quarantined string
}

// corruptReadRetries bounds the confirming re-reads a suspicious
// recovery pass triggers before the damage is believed.
const corruptReadRetries = 3

// recoverPass is one read+replay attempt over the on-disk image.
type recoverPass struct {
	data  []byte
	store *Store
	err   error // nil, or wraps ErrCorruptRecord (store = good prefix)
}

// goodBytes is how much of the image the pass replayed cleanly.
func (p recoverPass) goodBytes() int { return len(p.store.WALBytes()) }

// clean reports a full, uncorrupted replay of the whole image.
func (p recoverPass) clean() bool { return p.err == nil && p.goodBytes() == len(p.data) }

// OpenFileStore recovers a store from the log file at path on the real
// filesystem (an empty or absent file yields an empty store) and
// arranges for all further mutations to append to it.  The returned
// FileLog must be closed by the caller when the store is retired.
func OpenFileStore(path string) (*Store, *FileLog, error) {
	s, l, _, err := OpenFileStoreFS(OSFS, path)
	return s, l, err
}

// OpenFileStoreFS is OpenFileStore through an FS seam, reporting what
// recovery had to repair.  A suspicious first read (mid-stream CRC
// failure or a dropped tail) is confirmed against fresh re-reads before
// it is trusted: transient read-path corruption vanishes on re-read and
// must never truncate live state, while damage every read agrees on is
// really on the medium.  Confirmed mid-stream corruption quarantines
// the image at path+".corrupt" and fails loudly instead of silently
// replaying a truncated history; a confirmed torn tail (the normal
// crash-mid-append case) is dropped as before.
func OpenFileStoreFS(fsys FS, path string) (*Store, *FileLog, RecoverStats, error) {
	if fsys == nil {
		fsys = OSFS
	}
	var stats RecoverStats
	read := func() (recoverPass, error) {
		data, err := fsys.ReadFile(path)
		if err != nil && !os.IsNotExist(err) {
			return recoverPass{}, fmt.Errorf("storage: read log: %w", err)
		}
		st, rerr := Recover(data)
		if rerr != nil && !errors.Is(rerr, ErrCorruptRecord) {
			return recoverPass{}, rerr
		}
		return recoverPass{data: data, store: st, err: rerr}, nil
	}
	best, err := read()
	if err != nil {
		return nil, nil, stats, err
	}
	if !best.clean() {
		// The image lost bytes or failed a CRC.  Re-read before
		// believing it: if a fresh pass recovers strictly more, the
		// earlier bytes were damaged in flight, not on disk.
		for attempt := 0; attempt < corruptReadRetries; attempt++ {
			next, err := read()
			if err != nil {
				return nil, nil, stats, err
			}
			switch {
			case next.goodBytes() > best.goodBytes() ||
				(next.err == nil && best.err != nil && next.goodBytes() == best.goodBytes()):
				// The re-read is strictly healthier: the best pass so
				// far was a corrupt read.
				stats.CorruptReads++
				best = next
				if best.clean() {
					attempt = corruptReadRetries // confirmed healthy; done
				}
			case next.goodBytes() < best.goodBytes() ||
				(next.err != nil && best.err == nil):
				// This re-read itself came back damaged; keep best and
				// try again.
				stats.CorruptReads++
			default:
				// Two independent reads agree: the damage (or the torn
				// tail) is really in the file.
				attempt = corruptReadRetries
			}
		}
	}
	if best.err != nil {
		// Confirmed mid-stream corruption: records were lost from the
		// middle of the history, so the "recovered" prefix is not this
		// site's state.  Preserve the evidence and refuse.
		qpath := path + ".corrupt"
		if qerr := atomicRewriteFS(fsys, qpath, best.data); qerr == nil {
			stats.Quarantined = qpath
		}
		return nil, nil, stats, fmt.Errorf("storage: log %s corrupt mid-stream (quarantined at %s): %w", path, stats.Quarantined, best.err)
	}
	recovered := best.store
	// A torn tail (crash mid-append) replays silently as the intact
	// prefix; truncate the fragment so appends resume on a clean
	// boundary instead of burying garbage mid-stream.
	if wb := recovered.WALBytes(); len(wb) < len(best.data) {
		stats.TornBytes = len(best.data) - len(wb)
		if bytes.HasPrefix(best.data, wb) {
			if err := fsys.Truncate(path, int64(len(wb))); err != nil {
				return nil, nil, stats, fmt.Errorf("storage: truncate torn tail: %w", err)
			}
		} else if err := atomicRewriteFS(fsys, path, wb); err != nil {
			return nil, nil, stats, err
		}
	}
	log, err := OpenFileLogFS(fsys, path)
	if err != nil {
		return nil, nil, stats, err
	}
	recovered.mu.Lock()
	recovered.wal.sink = log
	recovered.mu.Unlock()
	return recovered, log, stats, nil
}

// atomicRewriteFS replaces the file at path with content via write-temp
// + fsync + rename + parent-dir fsync, the crash-safe way to drop a
// corrupt or torn suffix whose prefix re-encoding diverged from the
// on-disk bytes.  Without the final directory sync a power cut can lose
// the rename itself and resurrect the old file.
func atomicRewriteFS(fsys FS, path string, content []byte) error {
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, ".wal-repair-*")
	if err != nil {
		return fmt.Errorf("storage: repair temp: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(content); err != nil {
		tmp.Close()
		fsys.Remove(tmpName)
		return fmt.Errorf("storage: repair write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		fsys.Remove(tmpName)
		return fmt.Errorf("storage: repair sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		fsys.Remove(tmpName)
		return fmt.Errorf("storage: repair close: %w", err)
	}
	if err := fsys.Rename(tmpName, path); err != nil {
		fsys.Remove(tmpName)
		return fmt.Errorf("storage: repair rename: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("storage: repair dir sync: %w", err)
	}
	return nil
}

// CheckpointFile compacts the store's WAL and atomically replaces the
// log file with the compacted contents (write temp + fsync + rename +
// parent-dir fsync), re-pointing the store's sink at the new file.
// Returns the new log size.
func CheckpointFile(s *Store, log *FileLog) (int, *FileLog, error) {
	n, err := s.Checkpoint()
	if err != nil {
		return 0, log, err
	}
	fsys := log.fs
	if fsys == nil {
		fsys = OSFS
	}
	if err := atomicRewriteFS(fsys, log.path, s.WALBytes()); err != nil {
		return 0, log, fmt.Errorf("storage: checkpoint: %w", err)
	}
	path := log.path
	log.Close()
	fresh, err := OpenFileLogFS(fsys, path)
	if err != nil {
		return 0, nil, err
	}
	s.mu.Lock()
	s.wal.sink = fresh
	s.mu.Unlock()
	return n, fresh, nil
}
