package storage

import (
	"fmt"
	"os"
	"path/filepath"
)

// FileLog persists a site's WAL to a file.  Appends are written through
// to the file and synced on request; recovery reads the whole file and
// tolerates a torn tail, so a crash at any byte boundary is safe.
//
// The cluster runtime keeps its stores in memory (the simulated sites
// crash by dropping volatile state, not the process), but cmd tools and
// library users embedding a real site persist through this type.
type FileLog struct {
	f    *os.File
	path string
}

// OpenFileLog opens (creating if needed) the log file for appending.
func OpenFileLog(path string) (*FileLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open log: %w", err)
	}
	return &FileLog{f: f, path: path}, nil
}

// Write implements io.Writer for use as a WAL sink.
func (l *FileLog) Write(p []byte) (int, error) { return l.f.Write(p) }

// Sync flushes to stable storage.
func (l *FileLog) Sync() error { return l.f.Sync() }

// Close syncs and closes the file.
func (l *FileLog) Close() error {
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// Path returns the log file's path.
func (l *FileLog) Path() string { return l.path }

// OpenFileStore recovers a store from the log file at path (an empty or
// absent file yields an empty store) and arranges for all further
// mutations to append to it.  The returned FileLog must be closed by the
// caller when the store is retired.
func OpenFileStore(path string) (*Store, *FileLog, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("storage: read log: %w", err)
	}
	recovered, err := Recover(data)
	if err != nil {
		return nil, nil, err
	}
	log, err := OpenFileLog(path)
	if err != nil {
		return nil, nil, err
	}
	recovered.mu.Lock()
	recovered.wal.sink = log
	recovered.mu.Unlock()
	return recovered, log, nil
}

// CheckpointFile compacts the store's WAL and atomically replaces the
// log file with the compacted contents (write temp + rename), re-pointing
// the store's sink at the new file.  Returns the new log size.
func CheckpointFile(s *Store, log *FileLog) (int, *FileLog, error) {
	n, err := s.Checkpoint()
	if err != nil {
		return 0, log, err
	}
	dir := filepath.Dir(log.path)
	tmp, err := os.CreateTemp(dir, ".wal-checkpoint-*")
	if err != nil {
		return 0, log, fmt.Errorf("storage: checkpoint temp: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(s.WALBytes()); err != nil {
		cleanup()
		return 0, log, fmt.Errorf("storage: checkpoint write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return 0, log, fmt.Errorf("storage: checkpoint sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return 0, log, fmt.Errorf("storage: checkpoint close: %w", err)
	}
	if err := os.Rename(tmpName, log.path); err != nil {
		os.Remove(tmpName)
		return 0, log, fmt.Errorf("storage: checkpoint rename: %w", err)
	}
	path := log.path
	log.Close()
	fresh, err := OpenFileLog(path)
	if err != nil {
		return 0, nil, err
	}
	s.mu.Lock()
	s.wal.sink = fresh
	s.mu.Unlock()
	return n, fresh, nil
}
