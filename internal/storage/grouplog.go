package storage

import (
	"errors"
	"sync"
	"time"
)

// ErrGroupLogClosed is returned by GroupLog operations after Close.
var ErrGroupLogClosed = errors.New("storage: group log closed")

// GroupLog is a group-commit stage in front of a FileLog: WAL frames
// from many site events accumulate in a buffer and a background flusher
// retires the whole buffer with a single file write + fsync.  Callers
// that need durability wait on WaitSynced for their bytes to reach disk
// instead of paying a private fsync — one disk sync is amortized over
// every event that arrived during the previous sync (and, with a
// non-zero window, over a short accumulation delay on top).
//
// Positions are byte offsets in enqueue order: Write assigns each frame
// the range (Seq-len, Seq]; WaitSynced(seq) returns once at least seq
// bytes are durable.  Errors from the underlying file are sticky — once
// a write or sync fails, every subsequent Write/WaitSynced/Flush
// reports it, because the tail of the log after a failed batch has an
// undefined on-disk state.
type GroupLog struct {
	mu     sync.Mutex
	cond   *sync.Cond
	f      *FileLog
	window time.Duration
	buf    []byte
	enq    uint64 // bytes accepted into buf, total
	synced uint64 // bytes durably on disk, total
	err    error  // sticky first failure
	closed bool

	// wmu serializes actual file write+sync batches (the background
	// flusher and inline Flush callers) so batches hit the file in pop
	// order.
	wmu  sync.Mutex
	kick chan struct{}
	quit chan struct{}
	idle chan struct{} // closed when the flusher goroutine exits

	syncs   uint64 // fsync batches issued
	batched uint64 // frames retired (Write calls)
}

// NewGroupLog starts a group-commit stage over f.  A zero window means
// "flush as soon as the flusher is free": each fsync still covers every
// frame that arrived while the previous fsync was in flight, which is
// the classic self-clocking group commit.  A positive window adds a
// fixed accumulation delay before each flush, trading latency for
// larger groups.
func NewGroupLog(f *FileLog, window time.Duration) *GroupLog {
	g := &GroupLog{
		f:      f,
		window: window,
		kick:   make(chan struct{}, 1),
		quit:   make(chan struct{}),
		idle:   make(chan struct{}),
	}
	g.cond = sync.NewCond(&g.mu)
	go g.flusher()
	return g
}

// Write buffers p and returns immediately; p is durable only after a
// flush covers it.  Implements io.Writer so a GroupLog can serve as a
// WAL sink.
func (g *GroupLog) Write(p []byte) (int, error) {
	g.mu.Lock()
	if g.err != nil {
		err := g.err
		g.mu.Unlock()
		return 0, err
	}
	if g.closed {
		g.mu.Unlock()
		return 0, ErrGroupLogClosed
	}
	g.buf = append(g.buf, p...)
	g.enq += uint64(len(p))
	g.batched++
	g.mu.Unlock()
	select {
	case g.kick <- struct{}{}:
	default:
	}
	return len(p), nil
}

// Seq returns the total bytes accepted so far — pass it to WaitSynced
// to wait for everything enqueued up to this point.
func (g *GroupLog) Seq() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.enq
}

// Synced returns the total bytes durably flushed so far.
func (g *GroupLog) Synced() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.synced
}

// SyncBatches returns how many write+fsync batches have been issued —
// the denominator of the group-commit amortization ratio.
func (g *GroupLog) SyncBatches() (frames, syncs uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.batched, g.syncs
}

// WaitSynced blocks until at least seq enqueued bytes are durable, a
// flush fails, or the log closes.
func (g *GroupLog) WaitSynced(seq uint64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.synced < seq && g.err == nil && !g.closed {
		g.cond.Wait()
	}
	if g.err != nil {
		return g.err
	}
	if g.synced < seq {
		return ErrGroupLogClosed
	}
	return nil
}

// Flush synchronously writes and fsyncs everything buffered at the
// moment of the call, on the caller's goroutine.  This is the
// serialized-fsync path used when no concurrent lanes exist to share a
// group: durability cost lands inline, exactly like a private
// write+sync would.
func (g *GroupLog) Flush() error {
	g.mu.Lock()
	target := g.enq
	g.mu.Unlock()
	return g.flushTo(target)
}

// flushTo retires buffered bytes until at least target is durable.
func (g *GroupLog) flushTo(target uint64) error {
	for {
		g.wmu.Lock()
		g.mu.Lock()
		if g.err != nil {
			err := g.err
			g.mu.Unlock()
			g.wmu.Unlock()
			return err
		}
		if g.synced >= target {
			g.mu.Unlock()
			g.wmu.Unlock()
			return nil
		}
		batch := g.buf
		g.buf = nil
		g.mu.Unlock()

		var err error
		if len(batch) > 0 {
			if _, werr := g.f.Write(batch); werr != nil {
				err = werr
			} else if serr := g.f.Sync(); serr != nil {
				err = serr
			}
		}

		g.mu.Lock()
		if err != nil {
			if g.err == nil {
				g.err = err
			}
			err = g.err
		} else {
			g.synced += uint64(len(batch))
			g.syncs++
		}
		g.cond.Broadcast()
		done := err != nil || g.synced >= target
		g.mu.Unlock()
		g.wmu.Unlock()
		if done {
			return err
		}
		// Another Write raced in between our pop and target; loop to
		// cover it.  (Only possible when target was read before wmu was
		// held, i.e. never more than one extra round.)
	}
}

// flusher is the background group-commit loop: on each kick it
// optionally sleeps the accumulation window, then retires the whole
// buffer with one write+sync.
func (g *GroupLog) flusher() {
	defer close(g.idle)
	for {
		select {
		case <-g.quit:
			// Final drain so Close leaves nothing buffered.
			g.flushTo(g.Seq())
			return
		case <-g.kick:
			if g.window > 0 {
				timer := time.NewTimer(g.window)
				select {
				case <-timer.C:
				case <-g.quit:
					timer.Stop()
					g.flushTo(g.Seq())
					return
				}
			}
			g.flushTo(g.Seq())
		}
	}
}

// Close drains the buffer, stops the flusher, and marks the log closed.
// It does not close the underlying FileLog — the owner does that.
func (g *GroupLog) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	g.cond.Broadcast()
	g.mu.Unlock()
	close(g.quit)
	<-g.idle
	g.mu.Lock()
	err := g.err
	g.mu.Unlock()
	return err
}

// SetWALSink repoints the store's WAL sink — used to interpose a
// GroupLog between the store and its FileLog after OpenFileStore.
func (s *Store) SetWALSink(w *GroupLog) {
	s.mu.Lock()
	s.wal.sink = w
	s.mu.Unlock()
}
