package storage

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Apply parses and executes one disk-fault command, returning a
// one-line human-readable result.  The same grammar serves the polynode
// control port's DISKFAULT verb and the -disk-faults startup flag:
//
//	fsync|torn|enospc|readflip [path=<substr|*>] p=<prob> [once|sticky]
//	slow [path=<substr|*>] p=<prob> min=<dur> max=<dur> [once|sticky]
//	clear
//	seed n=<int>
//	status
//
// An omitted path= matches every file; p=0 removes the matching rule.
// `once` disarms the rule after its first hit; `sticky` makes the rule
// fire on every operation after its first hit (a persistent medium
// failure).  Durations use Go syntax (150ms, 2s).
func (f *FaultFS) Apply(cmd string) (string, error) {
	fields := strings.Fields(cmd)
	if len(fields) == 0 {
		return "", fmt.Errorf("diskfault: empty command")
	}
	verb := strings.ToLower(fields[0])
	kv, flags, err := parseDiskArgs(fields[1:])
	if err != nil {
		return "", err
	}
	switch verb {
	case DiskFsync, DiskTorn, DiskENOSPC, DiskReadFlip, DiskSlow:
		r := DiskRule{
			Kind:   verb,
			Path:   kv["path"],
			Once:   flags["once"],
			Sticky: flags["sticky"],
		}
		if r.Path == "*" {
			r.Path = ""
		}
		if _, ok := kv["p"]; !ok {
			return "", fmt.Errorf("diskfault: %s needs p=<prob>", verb)
		}
		if r.P, err = strconv.ParseFloat(kv["p"], 64); err != nil {
			return "", fmt.Errorf("diskfault: bad p=%q: %v", kv["p"], err)
		}
		if r.P < 0 || r.P > 1 {
			return "", fmt.Errorf("diskfault: p=%g out of [0,1]", r.P)
		}
		if verb == DiskSlow {
			if r.MinDelay, err = parseDiskDur(kv, "min"); err != nil {
				return "", err
			}
			if r.MaxDelay, err = parseDiskDur(kv, "max"); err != nil {
				return "", err
			}
			if r.MaxDelay < r.MinDelay {
				return "", fmt.Errorf("diskfault: slow max=%s < min=%s", r.MaxDelay, r.MinDelay)
			}
		}
		f.SetRule(r)
		if r.P == 0 {
			return fmt.Sprintf("cleared %s path=%s", r.Kind, orStar(r.Path)), nil
		}
		return "set " + r.String(), nil

	case "clear":
		f.Clear()
		return "cleared all disk faults", nil

	case "seed":
		n, err := strconv.ParseInt(kv["n"], 10, 64)
		if err != nil {
			return "", fmt.Errorf("diskfault: seed needs n=<int>: %v", err)
		}
		f.Reseed(n)
		return fmt.Sprintf("reseeded to %d", n), nil

	case "status":
		return strings.TrimRight(f.Status(), "\n"), nil
	}
	return "", fmt.Errorf("diskfault: unknown command %q", verb)
}

// ApplyPlan executes a whole plan: commands separated by ';' or
// newlines, blank entries and #-comments ignored.  The first error
// aborts and is returned with the offending command.
func (f *FaultFS) ApplyPlan(plan string) error {
	for _, line := range strings.FieldsFunc(plan, func(r rune) bool { return r == ';' || r == '\n' }) {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if _, err := f.Apply(line); err != nil {
			return fmt.Errorf("%w (in %q)", err, line)
		}
	}
	return nil
}

func parseDiskArgs(fields []string) (kv map[string]string, flags map[string]bool, err error) {
	kv = map[string]string{}
	flags = map[string]bool{}
	for _, f := range fields {
		if k, v, ok := strings.Cut(f, "="); ok {
			if k == "" || v == "" {
				return nil, nil, fmt.Errorf("diskfault: malformed argument %q", f)
			}
			kv[strings.ToLower(k)] = v
		} else {
			flags[strings.ToLower(f)] = true
		}
	}
	return kv, flags, nil
}

func parseDiskDur(kv map[string]string, key string) (time.Duration, error) {
	v, ok := kv[key]
	if !ok {
		return 0, fmt.Errorf("diskfault: missing %s=<dur>", key)
	}
	d, err := time.ParseDuration(v)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("diskfault: bad %s=%q", key, v)
	}
	return d, nil
}
