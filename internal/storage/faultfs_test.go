package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/polyvalue"
	"repro/internal/txn"
	"repro/internal/value"
)

// recordFS wraps an FS and records SyncDir calls, for asserting the
// rename-durability discipline (satellite: parent-dir fsync).
type recordFS struct {
	FS
	mu       sync.Mutex
	dirSyncs []string
}

func (r *recordFS) SyncDir(dir string) error {
	r.mu.Lock()
	r.dirSyncs = append(r.dirSyncs, dir)
	r.mu.Unlock()
	return r.FS.SyncDir(dir)
}

func tmpLog(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "site.wal")
}

func TestFaultFSFsyncOneShot(t *testing.T) {
	ffs := NewFaultFS(OSFS, FaultFSConfig{Seed: 1})
	ffs.SetRule(DiskRule{Kind: DiskFsync, P: 1, Once: true})
	log, err := OpenFileLogFS(ffs, tmpLog(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Sync(); !IsInjected(err) {
		t.Fatalf("want injected fsync failure, got %v", err)
	}
	// fsyncgate: the failure is sticky on the FileLog even though the
	// rule was one-shot — the page cache can no longer be trusted.
	if err := log.Sync(); err == nil {
		t.Fatal("sticky error not reported on second sync")
	}
	if _, err := log.Write([]byte("x")); err == nil {
		t.Fatal("sticky error not reported on write after failed sync")
	}
	if got := ffs.Counts()[DiskFsync]; got != 1 {
		t.Fatalf("injected count = %d, want 1 (one-shot rule)", got)
	}
}

func TestFaultFSENOSPCAndStickyRule(t *testing.T) {
	ffs := NewFaultFS(OSFS, FaultFSConfig{Seed: 2})
	ffs.SetRule(DiskRule{Kind: DiskENOSPC, P: 1, Sticky: true})
	log, err := OpenFileLogFS(ffs, tmpLog(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := log.Write([]byte("hello")); !IsInjected(err) {
		t.Fatalf("want injected ENOSPC, got %v", err)
	}
	if got := ffs.Counts()[DiskENOSPC]; got != 1 {
		t.Fatalf("injected count = %d, want 1", got)
	}
	// Sticky rule stays armed; sticky FileLog error fires first anyway.
	if _, err := log.Write([]byte("world")); err == nil {
		t.Fatal("write after ENOSPC must fail")
	}
}

func TestFaultFSTornWriteRecoversAsTornTail(t *testing.T) {
	path := tmpLog(t)
	ffs := NewFaultFS(OSFS, FaultFSConfig{Seed: 3})
	s, log, _, err := OpenFileStoreFS(ffs, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", polyvalue.Simple(value.Int(1))); err != nil {
		t.Fatal(err)
	}
	ffs.SetRule(DiskRule{Kind: DiskTorn, P: 1, Once: true})
	err = s.Put("b", polyvalue.Simple(value.Int(2)))
	if !IsTornWrite(err) || !IsInjected(err) {
		t.Fatalf("want injected torn write, got %v", err)
	}
	log.Close()
	// Reopen: recovery must drop the torn fragment and keep "a".
	s2, log2, stats, err := OpenFileStoreFS(NewFaultFS(OSFS, FaultFSConfig{Seed: 3}), path)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if stats.TornBytes == 0 {
		t.Fatal("expected a torn tail to be dropped")
	}
	if v, ok := s2.Get("a").IsCertain(); !ok || !v.Equal(value.Int(1)) {
		t.Fatalf("item a = %v after torn-write recovery, want 1", s2.Get("a"))
	}
	if s2.Has("b") {
		t.Fatal("torn record b must not survive recovery")
	}
}

func TestFaultFSReadFlipTransientHealsOnReread(t *testing.T) {
	path := tmpLog(t)
	s, log, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := s.Put("item"+string(rune('a'+i)), polyvalue.Simple(value.Int(7))); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	want, _ := os.ReadFile(path)
	// One-shot read flip: the first read pass is damaged, the re-read
	// comes back clean — recovery must trust the medium, not the first
	// read, and must not truncate the file.
	ffs := NewFaultFS(OSFS, FaultFSConfig{Seed: 4})
	ffs.SetRule(DiskRule{Kind: DiskReadFlip, P: 1, Once: true})
	s2, log2, stats, err := OpenFileStoreFS(ffs, path)
	if err != nil {
		t.Fatalf("transient read corruption must recover: %v", err)
	}
	defer log2.Close()
	if stats.CorruptReads == 0 {
		t.Fatal("corrupt read pass not counted")
	}
	if len(s2.Items()) != 8 {
		t.Fatalf("recovered %d items, want 8", len(s2.Items()))
	}
	got, _ := os.ReadFile(path)
	if len(got) != len(want) {
		t.Fatalf("on-disk log resized %d -> %d by a transient read flip", len(want), len(got))
	}
}

func TestFaultFSPersistentCorruptionQuarantines(t *testing.T) {
	path := tmpLog(t)
	s, log, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.SetOutcome(txn.ID(fmt.Sprintf("T%d", i)), true); err != nil {
			t.Fatal(err)
		}
	}
	log.Close()
	// Damage the medium itself, mid-stream.
	data, _ := os.ReadFile(path)
	data[len(data)/3] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, stats, err := OpenFileStoreFS(OSFS, path)
	if !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("persistent mid-stream corruption must refuse, got %v", err)
	}
	if stats.Quarantined == "" {
		t.Fatal("damaged image not quarantined")
	}
	q, qerr := os.ReadFile(stats.Quarantined)
	if qerr != nil || len(q) != len(data) {
		t.Fatalf("quarantine file bad: %v (%d bytes, want %d)", qerr, len(q), len(data))
	}
}

func TestFaultFSSlowDelays(t *testing.T) {
	ffs := NewFaultFS(OSFS, FaultFSConfig{Seed: 5})
	ffs.SetRule(DiskRule{Kind: DiskSlow, P: 1, MinDelay: 20 * time.Millisecond, MaxDelay: 20 * time.Millisecond})
	log, err := OpenFileLogFS(ffs, tmpLog(t))
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	start := time.Now()
	if _, err := log.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("slow rule did not stall: write took %s", d)
	}
}

func TestFaultFSDeterministicWithSeed(t *testing.T) {
	run := func() []string {
		ffs := NewFaultFS(OSFS, FaultFSConfig{Seed: 42})
		ffs.SetRule(DiskRule{Kind: DiskFsync, P: 0.5})
		log, err := OpenFileLogFS(ffs, tmpLog(t))
		if err != nil {
			t.Fatal(err)
		}
		var outcomes []string
		for i := 0; i < 20; i++ {
			// A fresh log each iteration sidesteps sticky FileLog errors:
			// this probes the injector's PRNG stream, not the discipline.
			if err := log.f.Sync(); err != nil {
				outcomes = append(outcomes, "fail")
			} else {
				outcomes = append(outcomes, "ok")
			}
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded schedules diverge at %d: %v vs %v", i, a, b)
		}
	}
}

func TestFaultFSPathMatching(t *testing.T) {
	ffs := NewFaultFS(OSFS, FaultFSConfig{Seed: 6})
	ffs.SetRule(DiskRule{Kind: DiskFsync, Path: "A.wal", P: 1})
	dir := t.TempDir()
	la, err := OpenFileLogFS(ffs, filepath.Join(dir, "A.wal"))
	if err != nil {
		t.Fatal(err)
	}
	lb, err := OpenFileLogFS(ffs, filepath.Join(dir, "B.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if err := lb.Sync(); err != nil {
		t.Fatalf("rule for A.wal hit B.wal: %v", err)
	}
	if err := la.Sync(); !IsInjected(err) {
		t.Fatalf("rule for A.wal missed A.wal: %v", err)
	}
}

func TestDiskPlanGrammar(t *testing.T) {
	ffs := NewFaultFS(OSFS, FaultFSConfig{Seed: 7})
	plan := `
		# storm
		fsync path=A.wal p=1 once
		torn p=0.2; enospc p=0.1 sticky
		slow p=0.3 min=1ms max=10ms
		readflip p=1 once
	`
	if err := ffs.ApplyPlan(plan); err != nil {
		t.Fatal(err)
	}
	status := ffs.Status()
	for _, want := range []string{"fsync path=A.wal p=1 once", "torn path=* p=0.2", "enospc path=* p=0.1 sticky", "slow path=* p=0.3 min=1ms max=10ms", "readflip path=* p=1 once"} {
		if !strings.Contains(status, want) {
			t.Fatalf("status missing %q:\n%s", want, status)
		}
	}
	// p=0 removes; clear empties; bad commands error.
	if _, err := ffs.Apply("torn p=0"); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(ffs.Status(), "torn") {
		t.Fatal("p=0 did not remove the torn rule")
	}
	if _, err := ffs.Apply("clear"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ffs.Status(), "no active disk faults") {
		t.Fatal("clear left rules behind")
	}
	for _, badCmd := range []string{"", "bogus p=1", "fsync", "fsync p=2", "slow p=1", "slow p=1 min=5ms max=1ms", "seed"} {
		if _, err := ffs.Apply(badCmd); err == nil {
			t.Fatalf("command %q should fail", badCmd)
		}
	}
}

func TestCheckpointFileSyncsParentDir(t *testing.T) {
	rfs := &recordFS{FS: OSFS}
	path := tmpLog(t)
	s, log, _, err := OpenFileStoreFS(rfs, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", polyvalue.Simple(value.Int(1))); err != nil {
		t.Fatal(err)
	}
	_, log2, err := CheckpointFile(s, log)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	rfs.mu.Lock()
	defer rfs.mu.Unlock()
	if len(rfs.dirSyncs) == 0 {
		t.Fatal("checkpoint rename not followed by parent-directory fsync")
	}
	if want := filepath.Dir(path); rfs.dirSyncs[0] != want {
		t.Fatalf("synced dir %q, want %q", rfs.dirSyncs[0], want)
	}
}

func TestFileLogTornPathReportsUnderlyingFailures(t *testing.T) {
	// Satellite: the TearNext path used to swallow both the short-write
	// error and the sync error.  Inject an fsync failure underneath an
	// armed tear and require it to surface and stick.
	ffs := NewFaultFS(OSFS, FaultFSConfig{Seed: 8})
	log, err := OpenFileLogFS(ffs, tmpLog(t))
	if err != nil {
		t.Fatal(err)
	}
	ffs.SetRule(DiskRule{Kind: DiskFsync, P: 1, Once: true})
	log.TearNext()
	_, err = log.Write([]byte("0123456789"))
	if !IsTornWrite(err) {
		t.Fatalf("want torn write, got %v", err)
	}
	if !strings.Contains(err.Error(), "injected disk fault") {
		t.Fatalf("underlying fsync failure swallowed by tear: %v", err)
	}
	if log.Err() == nil {
		t.Fatal("fsync failure under a tear must be sticky")
	}
}
