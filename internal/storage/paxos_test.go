package storage

import (
	"testing"

	"repro/internal/txn"
)

// TestPaxosStateRoundTrip: acceptor state survives recovery — the
// decision-plane durability the 2F+1 replication argument rests on.
func TestPaxosStateRoundTrip(t *testing.T) {
	s := NewStore()
	if err := s.SetPaxosMeta("t1", "A", []string{"A", "B", "C"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PaxosPromise("t1", 5); err != nil {
		t.Fatal(err)
	}
	if ok, _, err := s.PaxosAccept("t1", "B", 5, 1); err != nil || !ok {
		t.Fatalf("accept: ok=%v err=%v", ok, err)
	}
	if ok, _, err := s.PaxosAccept("t1", "C", 5, 2); err != nil || !ok {
		t.Fatalf("accept: ok=%v err=%v", ok, err)
	}

	r, err := Recover(s.WALBytes())
	if err != nil {
		t.Fatal(err)
	}
	e, ok := r.PaxosState("t1")
	if !ok {
		t.Fatal("paxos state lost in recovery")
	}
	if e.Coordinator != "A" || len(e.Participants) != 3 || e.Promised != 5 {
		t.Fatalf("recovered entry %+v", e)
	}
	if a := e.Accepted["B"]; a.Ballot != 5 || a.Vote != 1 {
		t.Fatalf("instance B: %+v", a)
	}
	if a := e.Accepted["C"]; a.Ballot != 5 || a.Vote != 2 {
		t.Fatalf("instance C: %+v", a)
	}
}

// TestPaxosPromiseMonotonic: a promise never regresses, and accepts
// below the promise are refused with the conflicting ballot.
func TestPaxosPromiseMonotonic(t *testing.T) {
	s := NewStore()
	if b, err := s.PaxosPromise("t1", 7); err != nil || b != 7 {
		t.Fatalf("promise: %d %v", b, err)
	}
	if b, err := s.PaxosPromise("t1", 3); err != nil || b != 7 {
		t.Fatalf("lower promise must keep 7: %d %v", b, err)
	}
	ok, conflict, err := s.PaxosAccept("t1", "B", 3, 1)
	if err != nil || ok || conflict != 7 {
		t.Fatalf("accept below promise: ok=%v conflict=%d err=%v", ok, conflict, err)
	}
	// At or above the promise, accepts land and raise the promise.
	if ok, _, err := s.PaxosAccept("t1", "B", 9, 1); err != nil || !ok {
		t.Fatalf("accept at 9: ok=%v err=%v", ok, err)
	}
	if e, _ := s.PaxosState("t1"); e.Promised != 9 {
		t.Fatalf("promise after accept: %d", e.Promised)
	}
}

// TestPaxosMetaFirstWriteWins: re-registering a transaction is a no-op,
// so duplicated MsgPaxosBegin deliveries append nothing.
func TestPaxosMetaFirstWriteWins(t *testing.T) {
	s := NewStore()
	if err := s.SetPaxosMeta("t1", "A", []string{"A", "B"}); err != nil {
		t.Fatal(err)
	}
	before := s.WALSize()
	if err := s.SetPaxosMeta("t1", "Z", []string{"Z"}); err != nil {
		t.Fatal(err)
	}
	if s.WALSize() != before {
		t.Error("duplicate meta appended to the WAL")
	}
	if e, _ := s.PaxosState("t1"); e.Coordinator != "A" {
		t.Errorf("coordinator overwritten: %s", e.Coordinator)
	}
}

// TestPaxosCheckpoint: undecided acceptor state survives compaction;
// state for transactions with a durable outcome is dropped.
func TestPaxosCheckpoint(t *testing.T) {
	s := NewStore()
	for _, tid := range []string{"t1", "t2"} {
		if err := s.SetPaxosMeta(txn.ID(tid), "A", []string{"A", "B", "C"}); err != nil {
			t.Fatal(err)
		}
		if ok, _, err := s.PaxosAccept(txn.ID(tid), "B", 0, 1); err != nil || !ok {
			t.Fatal(err)
		}
	}
	if err := s.SetOutcome("t2", true); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	r, err := Recover(s.WALBytes())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.PaxosState("t1"); !ok {
		t.Error("undecided t1 state lost in checkpoint")
	}
	if _, ok := r.PaxosState("t2"); ok {
		t.Error("decided t2 state survived checkpoint")
	}
	if _, known := r.Outcome("t2"); !known {
		t.Error("t2 outcome lost")
	}
}

// TestPaxosClear drops state explicitly and is idempotent.
func TestPaxosClear(t *testing.T) {
	s := NewStore()
	if ok, _, err := s.PaxosAccept("t1", "B", 0, 1); err != nil || !ok {
		t.Fatal(err)
	}
	if err := s.ClearPaxos("t1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.PaxosState("t1"); ok {
		t.Error("state survived clear")
	}
	before := s.WALSize()
	if err := s.ClearPaxos("t1"); err != nil {
		t.Fatal(err)
	}
	if s.WALSize() != before {
		t.Error("second clear appended to the WAL")
	}
	r, err := Recover(s.WALBytes())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.PaxosState("t1"); ok {
		t.Error("cleared state reappeared after recovery")
	}
}
