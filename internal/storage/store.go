package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/polyvalue"
	"repro/internal/txn"
	"repro/internal/value"
)

// Prepared is a transaction this site has computed results for but whose
// outcome it has not resolved locally: the in-doubt window of §3.1.
type Prepared struct {
	TID         txn.ID
	Coordinator string
	// Writes are the computed new values for local items.
	Writes map[string]polyvalue.Poly
	// Previous are those items' values before the transaction.
	Previous map[string]polyvalue.Poly
}

// DepEntry is one row of the §3.3 dependency table: "a list of the
// polyvalues held by the site that depend on T, and a list of other sites
// to which polyvalues dependent on T have been sent."
type DepEntry struct {
	Items map[string]bool
	Sites map[string]bool
}

// PaxosAccepted is one instance's durably accepted (ballot, vote) pair
// at an acceptor.
type PaxosAccepted struct {
	Ballot uint32
	// Vote uses protocol.Vote numbering (1 prepared, 2 aborted); storage
	// stays protocol-agnostic and treats it as opaque.
	Vote uint8
}

// PaxosEntry is one transaction's acceptor-side Paxos Commit state: the
// registrar information (coordinator + participant set) plus the
// promised ballot and per-instance accepted values.  It is exactly what
// must survive an acceptor restart for the decision to survive F of
// 2F+1 acceptor failures.
type PaxosEntry struct {
	Coordinator  string
	Participants []string
	// Promised is the highest ballot promised for this transaction; it
	// covers every instance, present and future.
	Promised uint32
	// Accepted maps instance (participant site) → accepted state.
	Accepted map[string]PaxosAccepted
}

// clone returns a deep copy safe to hand out under no lock.
func (e *PaxosEntry) clone() PaxosEntry {
	out := PaxosEntry{
		Coordinator:  e.Coordinator,
		Participants: append([]string(nil), e.Participants...),
		Promised:     e.Promised,
		Accepted:     make(map[string]PaxosAccepted, len(e.Accepted)),
	}
	for k, v := range e.Accepted {
		out.Accepted[k] = v
	}
	return out
}

// itemShards fixes the item map's shard count.  Sixteen is plenty: the
// goal is that point reads on independent items don't serialize behind
// the store-wide mutex WAL appends hold.
const itemShards = 16

// itemShard is one lock-striped slice of the item map.
type itemShard struct {
	mu sync.RWMutex
	m  map[string]polyvalue.Poly
}

// Store is a site's durable state.  Every mutation appends to the WAL
// before updating memory, so Recover rebuilds exactly this state.  Safe
// for concurrent use.
//
// The item map is sharded: point reads (Get/Has) take only their
// shard's read lock, so independent transactions — and inspection reads
// like a bench harness sampling balances — don't serialize behind the
// store-wide mutex that orders WAL appends.  Writes still append to the
// WAL under the outer mutex first (crash ordering is sacred), then
// update the shard.  Lock order is always outer mu → shard mu.
type Store struct {
	mu       sync.RWMutex
	wal      *WAL
	items    [itemShards]itemShard
	prepared map[txn.ID]Prepared
	outcomes map[txn.ID]bool // tid → committed
	deps     map[txn.ID]*DepEntry
	awaits   map[txn.ID]string // tid → coordinator to ask for the outcome
	paxos    map[txn.ID]*PaxosEntry
	// versions holds committed replica versions (quorum replication);
	// pendVers holds the versions each prepared transaction will install
	// if it commits.  Effective version = max over both, so two
	// concurrent transactions can never mint the same version.
	versions map[string]uint64
	pendVers map[txn.ID]map[string]uint64
	// checkpoints, when set via Instrument, counts WAL compactions.
	checkpoints *metrics.Counter
	// volatile suppresses WAL logging entirely (see SetVolatile).
	volatile bool
	// polyCount tracks the number of items currently holding uncertain
	// values, maintained on every Put so budget checks need no item
	// sweep.  Atomic: readers (PolyCount) don't take any store lock.
	polyCount atomic.Int64
}

// shard picks the lock stripe for an item (FNV-1a).
func (s *Store) shard(item string) *itemShard {
	h := uint32(2166136261)
	for i := 0; i < len(item); i++ {
		h ^= uint32(item[i])
		h *= 16777619
	}
	return &s.items[h%itemShards]
}

// Instrument attaches a metrics registry: WAL appends, appended bytes and
// checkpoints are recorded as storage.wal.* series labelled with site.
func (s *Store) Instrument(reg *metrics.Registry, site string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l := metrics.L("site", site)
	s.checkpoints = reg.Counter("storage.wal.checkpoints", l)
	s.wal.Instrument(reg.Counter("storage.wal.appends", l), reg.Counter("storage.wal.bytes", l))
}

// NewStore returns an empty store logging to a fresh in-memory WAL.
func NewStore() *Store { return NewStoreWithWAL(NewWAL()) }

// NewStoreWithWAL returns an empty store logging to the given WAL.
func NewStoreWithWAL(w *WAL) *Store {
	s := &Store{
		wal:      w,
		prepared: map[txn.ID]Prepared{},
		outcomes: map[txn.ID]bool{},
		deps:     map[txn.ID]*DepEntry{},
		awaits:   map[txn.ID]string{},
		paxos:    map[txn.ID]*PaxosEntry{},
		versions: map[string]uint64{},
		pendVers: map[txn.ID]map[string]uint64{},
	}
	for i := range s.items {
		s.items[i].m = map[string]polyvalue.Poly{}
	}
	return s
}

// Recover rebuilds a store from log contents; the returned store's WAL
// already contains the replayed records (appended afresh), so further
// mutation and a second crash are safe.  A torn tail is tolerated
// silently.  Corruption BEFORE the tail returns the store recovered
// from the intact prefix together with a wrapped ErrCorruptRecord: the
// bad record and everything after it are truncated away (the returned
// store's WAL holds only the good prefix), and the caller decides
// whether a partial recovery is acceptable.
func Recover(data []byte) (*Store, error) {
	s := NewStore()
	_, err := Replay(data, func(r Record) error { return s.apply(r, true) })
	if err != nil {
		if errors.Is(err, ErrCorruptRecord) {
			return s, err
		}
		return nil, err
	}
	return s, nil
}

// SetVolatile stops logging mutations to the WAL.  A node-mode cluster
// with no data directory has no durable medium at all — a process crash
// loses the Store object itself — so per-record framing, checksumming
// and log buffering buy nothing.  Not for the simulated runtime, where
// the in-memory store stands in for stable storage across simulated
// crashes and the WAL must stay replayable.
func (s *Store) SetVolatile() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.volatile = true
}

// apply logs (unless replaying or volatile) and applies one record.
// During replay the record is re-appended so the recovered store's log
// is self-contained.
func (s *Store) apply(r Record, replaying bool) error {
	if !s.volatile {
		if err := s.wal.Append(r); err != nil {
			return err
		}
	}
	switch r.Kind {
	case RecPut:
		sh := s.shard(r.Item)
		sh.mu.Lock()
		prev, had := sh.m[r.Item]
		sh.m[r.Item] = r.Poly
		sh.mu.Unlock()
		wasPoly := false
		if had {
			_, certain := prev.IsCertain()
			wasPoly = !certain
		}
		_, certain := r.Poly.IsCertain()
		if isPoly := !certain; isPoly != wasPoly {
			if isPoly {
				s.polyCount.Add(1)
			} else {
				s.polyCount.Add(-1)
			}
		}
	case RecPrepared:
		s.prepared[r.TID] = Prepared{
			TID: r.TID, Coordinator: r.Coordinator,
			Writes: r.Writes, Previous: r.Previous,
		}
	case RecResolved:
		delete(s.prepared, r.TID)
	case RecOutcome:
		s.outcomes[r.TID] = r.Committed
	case RecDepItem:
		s.dep(r.TID).Items[r.Item] = true
	case RecDepSite:
		s.dep(r.TID).Sites[r.Site] = true
	case RecDepSiteDone:
		if e, ok := s.deps[r.TID]; ok {
			delete(e.Sites, r.Site)
			if len(e.Sites) == 0 {
				delete(s.deps, r.TID)
			}
		}
	case RecDepClear:
		delete(s.deps, r.TID)
	case RecAwait:
		s.awaits[r.TID] = r.Coordinator
	case RecAwaitDone:
		delete(s.awaits, r.TID)
	case RecPaxosMeta:
		e := s.paxosEntry(r.TID)
		if e.Coordinator == "" && len(e.Participants) == 0 {
			e.Coordinator = r.Coordinator
			e.Participants = append([]string(nil), r.Sites...)
		}
	case RecPaxosPromise:
		e := s.paxosEntry(r.TID)
		if r.Ballot > e.Promised {
			e.Promised = r.Ballot
		}
	case RecPaxosAccept:
		e := s.paxosEntry(r.TID)
		if r.Ballot > e.Promised {
			e.Promised = r.Ballot
		}
		if prev, ok := e.Accepted[r.Site]; !ok || r.Ballot >= prev.Ballot {
			e.Accepted[r.Site] = PaxosAccepted{Ballot: r.Ballot, Vote: r.Vote}
		}
	case RecPaxosClear:
		delete(s.paxos, r.TID)
	case RecVersion:
		if r.Ver > s.versions[r.Item] {
			s.versions[r.Item] = r.Ver
		}
	case RecVerPending:
		m := make(map[string]uint64, len(r.Vers))
		for k, v := range r.Vers {
			m[k] = v
		}
		s.pendVers[r.TID] = m
	case RecVerDone:
		delete(s.pendVers, r.TID)
	default:
		return fmt.Errorf("storage: unknown record kind %d", r.Kind)
	}
	return nil
}

func (s *Store) paxosEntry(tid txn.ID) *PaxosEntry {
	e, ok := s.paxos[tid]
	if !ok {
		e = &PaxosEntry{Accepted: map[string]PaxosAccepted{}}
		s.paxos[tid] = e
	}
	return e
}

func (s *Store) dep(tid txn.ID) *DepEntry {
	e, ok := s.deps[tid]
	if !ok {
		e = &DepEntry{Items: map[string]bool{}, Sites: map[string]bool{}}
		s.deps[tid] = e
	}
	return e
}

// WALSize returns the current log size in bytes.
func (s *Store) WALSize() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.wal.Len()
}

// WALBytes returns the current log contents (what survives a crash).
func (s *Store) WALBytes() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]byte, s.wal.Len())
	copy(out, s.wal.Bytes())
	return out
}

// Put installs a value for an item.
func (s *Store) Put(item string, p polyvalue.Poly) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.apply(Record{Kind: RecPut, Item: item, Poly: p}, false)
}

// Get returns the current value of an item; never-written items read as
// the certain Nil value.  Touches only the item's shard lock.
func (s *Store) Get(item string) polyvalue.Poly {
	sh := s.shard(item)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if p, ok := sh.m[item]; ok {
		return p
	}
	return polyvalue.Simple(value.Nil{})
}

// Has reports whether the item has ever been written.
func (s *Store) Has(item string) bool {
	sh := s.shard(item)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	_, ok := sh.m[item]
	return ok
}

// Items returns the names of all stored items, sorted.
func (s *Store) Items() []string {
	var out []string
	for i := range s.items {
		sh := &s.items[i]
		sh.mu.RLock()
		for k := range sh.m {
			out = append(out, k)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// PolyItems returns the names of items currently holding uncertain
// values, sorted — the population the paper's §4 analysis predicts.
func (s *Store) PolyItems() []string {
	var out []string
	for i := range s.items {
		sh := &s.items[i]
		sh.mu.RLock()
		for k, p := range sh.m {
			if _, certain := p.IsCertain(); !certain {
				out = append(out, k)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// PolyCount returns the number of items currently holding uncertain
// values — PolyItems' length without the O(items) sweep, for budget
// checks on the protocol hot path.
func (s *Store) PolyCount() int { return int(s.polyCount.Load()) }

// DepCount returns the number of live §3.3 dependency-table entries.
func (s *Store) DepCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.deps)
}

// MarkPrepared records an in-doubt transaction's computed and previous
// values, durably, before ready is sent.
func (s *Store) MarkPrepared(p Prepared) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.apply(Record{
		Kind: RecPrepared, TID: p.TID, Coordinator: p.Coordinator,
		Writes: p.Writes, Previous: p.Previous,
	}, false)
}

// ClearPrepared removes an in-doubt entry once the transaction's fate is
// settled at this site.
func (s *Store) ClearPrepared(tid txn.ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.apply(Record{Kind: RecResolved, TID: tid}, false)
}

// GetPrepared looks up an in-doubt entry.
func (s *Store) GetPrepared(tid txn.ID) (Prepared, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.prepared[tid]
	return p, ok
}

// PreparedTxns returns all in-doubt entries, sorted by transaction ID.
func (s *Store) PreparedTxns() []Prepared {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Prepared, 0, len(s.prepared))
	for _, p := range s.prepared {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TID < out[j].TID })
	return out
}

// SetOutcome durably records a transaction's outcome.
func (s *Store) SetOutcome(tid txn.ID, committed bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.outcomes[tid]; ok {
		if existing != committed {
			return fmt.Errorf("storage: conflicting outcome for %s: had %v, got %v", tid, existing, committed)
		}
		return nil
	}
	return s.apply(Record{Kind: RecOutcome, TID: tid, Committed: committed}, false)
}

// Outcome returns a recorded outcome.
func (s *Store) Outcome(tid txn.ID) (committed, known bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.outcomes[tid]
	return c, ok
}

// ForgetOutcome drops a recorded outcome (bounded-memory hygiene once no
// polyvalue can depend on it anymore; §3.3's "any data structures used to
// keep track of the transaction outcome should be quickly deleted").
// Implemented as a dep-clear plus outcome tombstone via RecDepClear; the
// outcome map entry is removed in memory only if present.
func (s *Store) ForgetOutcome(tid txn.ID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.outcomes, tid)
}

// AddDepItem records that a local item's polyvalue depends on tid.
func (s *Store) AddDepItem(tid txn.ID, item string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.apply(Record{Kind: RecDepItem, TID: tid, Item: item}, false)
}

// AddDepSite records that a polyvalue dependent on tid was sent to site.
func (s *Store) AddDepSite(tid txn.ID, site string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if site == "" {
		return fmt.Errorf("storage: empty dependent site")
	}
	return s.apply(Record{Kind: RecDepSite, TID: tid, Site: site}, false)
}

// RemoveDepSite removes one acknowledged site from tid's dependency
// entry; the entry is deleted when its last site is removed.  A no-op
// when the entry or site is absent.
func (s *Store) RemoveDepSite(tid txn.ID, site string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.deps[tid]
	if !ok || !e.Sites[site] {
		return nil
	}
	return s.apply(Record{Kind: RecDepSiteDone, TID: tid, Site: site}, false)
}

// HasDeps reports whether tid has a live dependency entry.
func (s *Store) HasDeps(tid txn.ID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.deps[tid]
	return ok
}

// ClearDeps removes the dependency entry for tid.
func (s *Store) ClearDeps(tid txn.ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.apply(Record{Kind: RecDepClear, TID: tid}, false)
}

// Deps returns the dependency entry for tid: local items and remote
// sites, both sorted.  Empty slices mean no entry.
func (s *Store) Deps(tid txn.ID) (items, sites []string) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.deps[tid]
	if !ok {
		return nil, nil
	}
	for it := range e.Items {
		items = append(items, it)
	}
	for st := range e.Sites {
		sites = append(sites, st)
	}
	sort.Strings(items)
	sort.Strings(sites)
	return items, sites
}

// DepTIDs returns every transaction with a live dependency entry, sorted.
func (s *Store) DepTIDs() []txn.ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]txn.ID, 0, len(s.deps))
	for tid := range s.deps {
		out = append(out, tid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SetAwait durably records that this site must learn tid's outcome from
// the named coordinator (it installed polyvalues for tid's updates).
func (s *Store) SetAwait(tid txn.ID, coordinator string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.apply(Record{Kind: RecAwait, TID: tid, Coordinator: coordinator}, false)
}

// ClearAwait removes an await entry once the outcome is known.
func (s *Store) ClearAwait(tid txn.ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.awaits[tid]; !ok {
		return nil
	}
	return s.apply(Record{Kind: RecAwaitDone, TID: tid}, false)
}

// Await looks up the coordinator recorded for tid.
func (s *Store) Await(tid txn.ID) (coordinator string, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.awaits[tid]
	return c, ok
}

// Awaits returns every pending await entry, sorted by transaction ID.
func (s *Store) Awaits() map[txn.ID]string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[txn.ID]string, len(s.awaits))
	for tid, c := range s.awaits {
		out[tid] = c
	}
	return out
}

// SetPaxosMeta durably records the registrar information for one
// transaction's decision at this acceptor.  First write wins;
// re-recording identical information is skipped entirely.
func (s *Store) SetPaxosMeta(tid txn.ID, coordinator string, participants []string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.paxos[tid]; ok && (e.Coordinator != "" || len(e.Participants) > 0) {
		return nil
	}
	return s.apply(Record{Kind: RecPaxosMeta, TID: tid, Coordinator: coordinator, Sites: participants}, false)
}

// PaxosPromise durably raises the promised ballot for tid.  Returns the
// resulting promised ballot; a ballot at or below the current promise
// changes nothing (and appends nothing).
func (s *Store) PaxosPromise(tid txn.ID, ballot uint32) (uint32, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.paxos[tid]; ok && ballot <= e.Promised {
		return e.Promised, nil
	}
	if err := s.apply(Record{Kind: RecPaxosPromise, TID: tid, Ballot: ballot}, false); err != nil {
		return 0, err
	}
	return ballot, nil
}

// PaxosAccept durably accepts vote at ballot for one instance of tid,
// provided ballot is at least the promised ballot.  Returns false (and
// the conflicting promise) when the promise forbids it.
func (s *Store) PaxosAccept(tid txn.ID, instance string, ballot uint32, vote uint8) (bool, uint32, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.paxos[tid]; ok && ballot < e.Promised {
		return false, e.Promised, nil
	}
	if err := s.apply(Record{Kind: RecPaxosAccept, TID: tid, Site: instance, Ballot: ballot, Vote: vote}, false); err != nil {
		return false, 0, err
	}
	return true, ballot, nil
}

// PaxosState returns a copy of tid's acceptor state.
func (s *Store) PaxosState(tid txn.ID) (PaxosEntry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.paxos[tid]
	if !ok {
		return PaxosEntry{}, false
	}
	return e.clone(), true
}

// PaxosTxns returns every transaction with live acceptor state, sorted.
func (s *Store) PaxosTxns() []txn.ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]txn.ID, 0, len(s.paxos))
	for tid := range s.paxos {
		out = append(out, tid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ClearPaxos drops tid's acceptor state (the decision was learned and is
// durably recorded as an outcome).  A no-op when absent.
func (s *Store) ClearPaxos(tid txn.ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.paxos[tid]; !ok {
		return nil
	}
	return s.apply(Record{Kind: RecPaxosClear, TID: tid}, false)
}

// SetVerPending durably records the versions tid will install for its
// written items if it commits.  Pending versions count toward
// EffectiveVersion immediately, so a concurrent transaction reading a
// quorum can never mint the same version number.
func (s *Store) SetVerPending(tid txn.ID, vers map[string]uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(vers) == 0 {
		return nil
	}
	return s.apply(Record{Kind: RecVerPending, TID: tid, Vers: vers}, false)
}

// SettleVersions resolves tid's pending versions: on commit each becomes
// the item's committed version, on abort they are simply dropped (commit
// is the only event that bumps a replica version — bumping on abort
// would let a stale replica win a quorum-read tie-break).  A no-op when
// tid has no pending entry.
func (s *Store) SettleVersions(tid txn.ID, committed bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	pend, ok := s.pendVers[tid]
	if !ok {
		return nil
	}
	if committed {
		items := make([]string, 0, len(pend))
		for it := range pend {
			items = append(items, it)
		}
		sort.Strings(items)
		for _, it := range items {
			if err := s.apply(Record{Kind: RecVersion, Item: it, Ver: pend[it]}, false); err != nil {
				return err
			}
		}
	}
	return s.apply(Record{Kind: RecVerDone, TID: tid}, false)
}

// Version returns an item's committed replica version (zero when never
// written under replication).
func (s *Store) Version(item string) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.versions[item]
}

// EffectiveVersion returns the maximum of the item's committed version
// and any version a prepared transaction would install — the version a
// quorum read must see so concurrent writers allocate distinct numbers.
func (s *Store) EffectiveVersion(item string) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v := s.versions[item]
	for _, pend := range s.pendVers {
		if pv, ok := pend[item]; ok && pv > v {
			v = pv
		}
	}
	return v
}

// SetVersion installs a committed version learned through anti-entropy,
// provided it is newer than the current committed version.  Reports
// whether it applied.
func (s *Store) SetVersion(item string, ver uint64) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ver <= s.versions[item] {
		return false, nil
	}
	if err := s.apply(Record{Kind: RecVersion, Item: item, Ver: ver}, false); err != nil {
		return false, err
	}
	return true, nil
}

// VersionsSnapshot returns a copy of the committed version table.
func (s *Store) VersionsSnapshot() map[string]uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]uint64, len(s.versions))
	for k, v := range s.versions {
		out[k] = v
	}
	return out
}

// OutcomesSnapshot returns a copy of the known-outcome table — the
// digest anti-entropy gossips.
func (s *Store) OutcomesSnapshot() map[txn.ID]bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[txn.ID]bool, len(s.outcomes))
	for tid, c := range s.outcomes {
		out[tid] = c
	}
	return out
}

// Checkpoint compacts the WAL: the log is rewritten as the minimal record
// sequence reproducing the current state.  Returns the new log size.
func (s *Store) Checkpoint() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fresh := NewWAL()
	// Stable order for determinism.  Item writers are blocked on the
	// outer mutex here, so the shard sweep sees a consistent state.
	var items []string
	vals := map[string]polyvalue.Poly{}
	for i := range s.items {
		sh := &s.items[i]
		sh.mu.RLock()
		for k, p := range sh.m {
			items = append(items, k)
			vals[k] = p
		}
		sh.mu.RUnlock()
	}
	sort.Strings(items)
	for _, k := range items {
		if err := fresh.Append(Record{Kind: RecPut, Item: k, Poly: vals[k]}); err != nil {
			return 0, err
		}
	}
	tids := make([]txn.ID, 0, len(s.prepared))
	for tid := range s.prepared {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	for _, tid := range tids {
		p := s.prepared[tid]
		if err := fresh.Append(Record{Kind: RecPrepared, TID: tid, Coordinator: p.Coordinator, Writes: p.Writes, Previous: p.Previous}); err != nil {
			return 0, err
		}
	}
	otids := make([]txn.ID, 0, len(s.outcomes))
	for tid := range s.outcomes {
		otids = append(otids, tid)
	}
	sort.Slice(otids, func(i, j int) bool { return otids[i] < otids[j] })
	for _, tid := range otids {
		if err := fresh.Append(Record{Kind: RecOutcome, TID: tid, Committed: s.outcomes[tid]}); err != nil {
			return 0, err
		}
	}
	dtids := make([]txn.ID, 0, len(s.deps))
	for tid := range s.deps {
		dtids = append(dtids, tid)
	}
	sort.Slice(dtids, func(i, j int) bool { return dtids[i] < dtids[j] })
	for _, tid := range dtids {
		e := s.deps[tid]
		its := make([]string, 0, len(e.Items))
		for it := range e.Items {
			its = append(its, it)
		}
		sort.Strings(its)
		for _, it := range its {
			if err := fresh.Append(Record{Kind: RecDepItem, TID: tid, Item: it}); err != nil {
				return 0, err
			}
		}
		sts := make([]string, 0, len(e.Sites))
		for st := range e.Sites {
			sts = append(sts, st)
		}
		sort.Strings(sts)
		for _, st := range sts {
			if err := fresh.Append(Record{Kind: RecDepSite, TID: tid, Site: st}); err != nil {
				return 0, err
			}
		}
	}
	atids := make([]txn.ID, 0, len(s.awaits))
	for tid := range s.awaits {
		atids = append(atids, tid)
	}
	sort.Slice(atids, func(i, j int) bool { return atids[i] < atids[j] })
	for _, tid := range atids {
		if err := fresh.Append(Record{Kind: RecAwait, TID: tid, Coordinator: s.awaits[tid]}); err != nil {
			return 0, err
		}
	}
	ptids := make([]txn.ID, 0, len(s.paxos))
	for tid := range s.paxos {
		// Acceptor state for a transaction whose outcome is durably
		// recorded here is dead weight: the outcome record alone answers
		// every future inquiry.  Compaction drops it.
		if _, decided := s.outcomes[tid]; decided {
			continue
		}
		ptids = append(ptids, tid)
	}
	sort.Slice(ptids, func(i, j int) bool { return ptids[i] < ptids[j] })
	for _, tid := range ptids {
		e := s.paxos[tid]
		if e.Coordinator != "" || len(e.Participants) > 0 {
			if err := fresh.Append(Record{Kind: RecPaxosMeta, TID: tid, Coordinator: e.Coordinator, Sites: e.Participants}); err != nil {
				return 0, err
			}
		}
		if e.Promised > 0 {
			if err := fresh.Append(Record{Kind: RecPaxosPromise, TID: tid, Ballot: e.Promised}); err != nil {
				return 0, err
			}
		}
		insts := make([]string, 0, len(e.Accepted))
		for inst := range e.Accepted {
			insts = append(insts, inst)
		}
		sort.Strings(insts)
		for _, inst := range insts {
			a := e.Accepted[inst]
			if err := fresh.Append(Record{Kind: RecPaxosAccept, TID: tid, Site: inst, Ballot: a.Ballot, Vote: a.Vote}); err != nil {
				return 0, err
			}
		}
	}
	vitems := make([]string, 0, len(s.versions))
	for it := range s.versions {
		vitems = append(vitems, it)
	}
	sort.Strings(vitems)
	for _, it := range vitems {
		if err := fresh.Append(Record{Kind: RecVersion, Item: it, Ver: s.versions[it]}); err != nil {
			return 0, err
		}
	}
	vtids := make([]txn.ID, 0, len(s.pendVers))
	for tid := range s.pendVers {
		vtids = append(vtids, tid)
	}
	sort.Slice(vtids, func(i, j int) bool { return vtids[i] < vtids[j] })
	for _, tid := range vtids {
		if err := fresh.Append(Record{Kind: RecVerPending, TID: tid, Vers: s.pendVers[tid]}); err != nil {
			return 0, err
		}
	}
	s.wal.Reset()
	if _, err := s.wal.buf.Write(fresh.Bytes()); err != nil {
		return 0, err
	}
	if s.checkpoints != nil {
		s.checkpoints.Inc()
	}
	return s.wal.Len(), nil
}
