package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestGroupLogConcurrentWaiters hammers one GroupLog from many
// goroutines, each waiting for its own frame's durability, and then
// checks that every byte reached the file in enqueue order and that the
// flusher actually grouped frames (fewer fsync batches than frames).
func TestGroupLogConcurrentWaiters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "group.wal")
	f, err := OpenFileLog(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	g := NewGroupLog(f, 0)

	const workers = 8
	const frames = 50
	var wg sync.WaitGroup
	var mu sync.Mutex
	var want int // total bytes written
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < frames; i++ {
				frame := []byte(fmt.Sprintf("w%d.f%03d;", w, i))
				mu.Lock()
				// Write and Seq under one lock so the waited-for seq is
				// this frame's own enqueue position.
				if _, err := g.Write(frame); err != nil {
					mu.Unlock()
					t.Errorf("write: %v", err)
					return
				}
				seq := g.Seq()
				want += len(frame)
				mu.Unlock()
				if err := g.WaitSynced(seq); err != nil {
					t.Errorf("wait(%d): %v", seq, err)
					return
				}
				if got := g.Synced(); got < seq {
					t.Errorf("WaitSynced(%d) returned with Synced()=%d", seq, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := g.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if len(raw) != want {
		t.Fatalf("file holds %d bytes, wrote %d", len(raw), want)
	}
	// Every frame must appear exactly once (batches may interleave frames
	// from different workers, but never split or duplicate one).
	for w := 0; w < workers; w++ {
		for i := 0; i < frames; i++ {
			frame := []byte(fmt.Sprintf("w%d.f%03d;", w, i))
			if bytes.Count(raw, frame) != 1 {
				t.Fatalf("frame %s appears %d times", frame, bytes.Count(raw, frame))
			}
		}
	}
	nframes, syncs := g.SyncBatches()
	if nframes != workers*frames {
		t.Fatalf("batched %d frames, wrote %d", nframes, workers*frames)
	}
	if syncs == 0 || syncs > nframes {
		t.Fatalf("implausible sync count %d for %d frames", syncs, nframes)
	}
	t.Logf("group commit: %d frames retired in %d fsync batches", nframes, syncs)
}

// TestGroupLogInlineFlush exercises the lanes-off durable path: Flush on
// the caller's goroutine makes everything enqueued so far durable.
func TestGroupLogInlineFlush(t *testing.T) {
	path := filepath.Join(t.TempDir(), "inline.wal")
	f, err := OpenFileLog(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	g := NewGroupLog(f, 0)
	defer g.Close()

	if _, err := g.Write([]byte("hello ")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := g.Write([]byte("world")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := g.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if got, want := g.Synced(), g.Seq(); got != want {
		t.Fatalf("Synced()=%d after Flush, Seq()=%d", got, want)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if string(raw) != "hello world" {
		t.Fatalf("file holds %q", raw)
	}
}

// TestGroupLogClose verifies Close drains the buffer and that writes
// after Close fail with ErrGroupLogClosed.
func TestGroupLogClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "close.wal")
	f, err := OpenFileLog(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	g := NewGroupLog(f, 0)
	if _, err := g.Write([]byte("tail")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := g.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if string(raw) != "tail" {
		t.Fatalf("close did not drain: file holds %q", raw)
	}
	if _, err := g.Write([]byte("x")); err != ErrGroupLogClosed {
		t.Fatalf("write after close: err=%v, want ErrGroupLogClosed", err)
	}
	if err := g.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}
