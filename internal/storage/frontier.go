// Crash-recovery frontier sweep (ALICE-style): take a recorded WAL byte
// stream and recover from every prefix a crash could leave behind —
// each frame boundary, plus torn tails cut at every interesting offset
// inside the next frame — asserting on each that recovery is clean,
// that a torn tail recovers to exactly the state of the boundary before
// it, that recovery is idempotent (recovering a recovered log's bytes
// is a fixpoint), and that replayed-frame counts grow monotonically.
// This is the offline proof obligation behind the fsyncgate discipline:
// whatever byte the power died on, the re-read-from-disk path must land
// on a well-defined earlier state.
package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// FrontierReport summarizes one sweep.
type FrontierReport struct {
	Frames     int // complete frames in the recorded stream
	Prefixes   int // frame-boundary prefixes recovered
	Torn       int // torn-tail variants recovered
	Violations []string
}

// Ok reports whether every prefix and torn variant recovered with all
// invariants intact.
func (r FrontierReport) Ok() bool { return len(r.Violations) == 0 }

func (r FrontierReport) String() string {
	return fmt.Sprintf("frontier: %d frames, %d prefixes, %d torn variants, %d violations",
		r.Frames, r.Prefixes, r.Torn, len(r.Violations))
}

// frameBoundaries scans the WAL framing (uvarint length + payload +
// CRC32) and returns every byte offset at which a frame ends, starting
// with 0 (the empty log).  Scanning stops at the first frame that does
// not parse — the sweep only walks the well-formed prefix.
func frameBoundaries(data []byte) []int {
	bounds := []int{0}
	off := 0
	for off < len(data) {
		ln, n := binary.Uvarint(data[off:])
		if n <= 0 || ln > uint64(len(data)-off-n) || len(data)-off-n-int(ln) < 4 {
			break
		}
		off += n + int(ln) + 4
		bounds = append(bounds, off)
	}
	return bounds
}

// fingerprint canonicalizes a recovered store's logical state: recover
// a private copy and checkpoint it, which rewrites the WAL as a minimal
// record set in stable sorted order.  Equal fingerprints ⇔ equal
// durable state.
func fingerprint(s *Store) ([]byte, error) {
	copyStore, err := Recover(s.WALBytes())
	if err != nil {
		return nil, fmt.Errorf("fingerprint recover: %w", err)
	}
	if _, err := copyStore.Checkpoint(); err != nil {
		return nil, fmt.Errorf("fingerprint checkpoint: %w", err)
	}
	return copyStore.WALBytes(), nil
}

// FrontierSweep recovers data from every crash frontier and checks the
// recovery invariants.  The sweep is deterministic: same bytes, same
// report.
func FrontierSweep(data []byte) FrontierReport {
	var rep FrontierReport
	bad := func(format string, args ...any) {
		rep.Violations = append(rep.Violations, fmt.Sprintf(format, args...))
	}
	bounds := frameBoundaries(data)
	rep.Frames = len(bounds) - 1
	prints := make([][]byte, len(bounds))
	prevFrames := -1
	for i, b := range bounds {
		prefix := data[:b]
		frames := 0
		if _, err := Replay(prefix, func(Record) error { frames++; return nil }); err != nil {
			bad("prefix %d (%d bytes): replay: %v", i, b, err)
			continue
		}
		if frames != i {
			bad("prefix %d (%d bytes): replayed %d frames, want %d", i, b, frames, i)
		}
		if frames <= prevFrames {
			bad("prefix %d: frame count %d not monotonic (prev %d)", i, frames, prevFrames)
		}
		prevFrames = frames
		st, err := Recover(prefix)
		if err != nil {
			bad("prefix %d (%d bytes): recover: %v", i, b, err)
			continue
		}
		rep.Prefixes++
		fp, err := fingerprint(st)
		if err != nil {
			bad("prefix %d: %v", i, err)
			continue
		}
		prints[i] = fp
		// Idempotence: recovering the recovered bytes is a fixpoint.
		st2, err := Recover(st.WALBytes())
		if err != nil {
			bad("prefix %d: double recover: %v", i, err)
			continue
		}
		fp2, err := fingerprint(st2)
		if err != nil {
			bad("prefix %d: double %v", i, err)
			continue
		}
		if !bytes.Equal(fp, fp2) {
			bad("prefix %d: recovery not idempotent", i)
		}
	}
	// Torn tails: for every boundary, cut the next frame at its first
	// byte, its midpoint, and one byte short of complete.  Each variant
	// must recover silently to the boundary's exact state.
	for i := 0; i+1 < len(bounds); i++ {
		if prints[i] == nil {
			continue
		}
		b, next := bounds[i], bounds[i+1]
		frameLen := next - b
		cuts := []int{1, frameLen / 2, frameLen - 1}
		for _, c := range cuts {
			if c <= 0 || c >= frameLen {
				continue
			}
			torn := data[:b+c]
			st, err := Recover(torn)
			if err != nil {
				bad("torn %d+%d: recover: %v", i, c, err)
				continue
			}
			rep.Torn++
			fp, err := fingerprint(st)
			if err != nil {
				bad("torn %d+%d: %v", i, c, err)
				continue
			}
			if !bytes.Equal(fp, prints[i]) {
				bad("torn %d+%d: recovered state differs from frontier %d", i, c, i)
			}
		}
	}
	return rep
}
