package storage

import (
	"testing"
)

// TestVersionPendingAndSettle covers the quorum-replication version
// lifecycle: pending versions count toward the effective version, commit
// promotes them to committed versions, abort drops them without a bump.
func TestVersionPendingAndSettle(t *testing.T) {
	s := NewStore()
	if v := s.Version("bal_r0"); v != 0 {
		t.Fatalf("fresh version = %d", v)
	}
	if err := s.SetVerPending("T1", map[string]uint64{"bal_r0": 3, "bal_r1": 3}); err != nil {
		t.Fatal(err)
	}
	if v := s.Version("bal_r0"); v != 0 {
		t.Errorf("pending leaked into committed version: %d", v)
	}
	if v := s.EffectiveVersion("bal_r0"); v != 3 {
		t.Errorf("effective version = %d, want 3", v)
	}
	if err := s.SettleVersions("T1", true); err != nil {
		t.Fatal(err)
	}
	if v := s.Version("bal_r0"); v != 3 {
		t.Errorf("committed version = %d, want 3", v)
	}
	if v := s.EffectiveVersion("bal_r1"); v != 3 {
		t.Errorf("effective after settle = %d, want 3", v)
	}

	// Abort path: pending version vanishes without bumping.
	if err := s.SetVerPending("T2", map[string]uint64{"bal_r0": 4}); err != nil {
		t.Fatal(err)
	}
	if v := s.EffectiveVersion("bal_r0"); v != 4 {
		t.Errorf("effective with pending = %d, want 4", v)
	}
	if err := s.SettleVersions("T2", false); err != nil {
		t.Fatal(err)
	}
	if v := s.EffectiveVersion("bal_r0"); v != 3 {
		t.Errorf("effective after abort = %d, want 3", v)
	}
	// Settling an unknown transaction is a no-op.
	if err := s.SettleVersions("T9", true); err != nil {
		t.Fatal(err)
	}
}

// TestSetVersionGuarded: anti-entropy applies only strictly newer
// versions.
func TestSetVersionGuarded(t *testing.T) {
	s := NewStore()
	if ok, err := s.SetVersion("bal", 2); err != nil || !ok {
		t.Fatalf("SetVersion(2) = %v, %v", ok, err)
	}
	if ok, _ := s.SetVersion("bal", 2); ok {
		t.Error("equal version applied")
	}
	if ok, _ := s.SetVersion("bal", 1); ok {
		t.Error("older version applied")
	}
	if ok, _ := s.SetVersion("bal", 5); !ok {
		t.Error("newer version refused")
	}
	if v := s.Version("bal"); v != 5 {
		t.Errorf("version = %d", v)
	}
}

// TestVersionRecovery: the version and pending tables survive a crash —
// both through raw WAL replay and through a checkpointed log.
func TestVersionRecovery(t *testing.T) {
	s := NewStore()
	if _, err := s.SetVersion("bal_r0", 7); err != nil {
		t.Fatal(err)
	}
	if err := s.SetVerPending("T1", map[string]uint64{"bal_r0": 8, "seats_r2": 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetVerPending("T2", map[string]uint64{"seats_r2": 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.SettleVersions("T2", true); err != nil {
		t.Fatal(err)
	}

	check := func(r *Store, label string) {
		t.Helper()
		if v := r.Version("bal_r0"); v != 7 {
			t.Errorf("%s: bal_r0 version = %d, want 7", label, v)
		}
		if v := r.Version("seats_r2"); v != 2 {
			t.Errorf("%s: seats_r2 version = %d, want 2", label, v)
		}
		if v := r.EffectiveVersion("bal_r0"); v != 8 {
			t.Errorf("%s: bal_r0 effective = %d, want 8 (T1 still pending)", label, v)
		}
		// T1's pending entry must still settle after recovery.
		if err := r.SettleVersions("T1", true); err != nil {
			t.Fatal(err)
		}
		if v := r.Version("bal_r0"); v != 8 {
			t.Errorf("%s: bal_r0 after settle = %d, want 8", label, v)
		}
	}

	r1, err := Recover(s.WALBytes())
	if err != nil {
		t.Fatal(err)
	}
	check(r1, "replay")

	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	r2, err := Recover(s.WALBytes())
	if err != nil {
		t.Fatal(err)
	}
	check(r2, "checkpoint")

	snap := s.VersionsSnapshot()
	if snap["bal_r0"] != 7 || snap["seats_r2"] != 2 {
		t.Errorf("snapshot = %v", snap)
	}
}
