package storage

import (
	"fmt"
	"testing"

	"repro/internal/polyvalue"
	"repro/internal/txn"
	"repro/internal/value"
)

// richWAL builds a store exercising every record family the WAL can
// carry, and returns its recorded byte stream.
func richWAL(t *testing.T) []byte {
	t.Helper()
	s := NewStore()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		must(s.Put(fmt.Sprintf("acct%d", i), polyvalue.Simple(value.Int(int64(100+i)))))
	}
	must(s.Put("poly", polyvalue.Uncertain("T1",
		polyvalue.Simple(value.Int(50)), polyvalue.Simple(value.Int(100)))))
	must(s.MarkPrepared(Prepared{
		TID:      "T2",
		Writes:   map[string]polyvalue.Poly{"acct0": polyvalue.Simple(value.Int(1))},
		Previous: map[string]polyvalue.Poly{"acct0": polyvalue.Simple(value.Int(100))},
	}))
	must(s.SetOutcome("T1", true))
	must(s.AddDepItem("T3", "poly"))
	must(s.AddDepSite("T3", "B"))
	must(s.SetAwait("T4", "C"))
	must(s.SetPaxosMeta("T5", "A", []string{"A", "B", "C"}))
	if _, err := s.PaxosPromise("T5", 3); err != nil {
		t.Fatal(err)
	}
	must(s.SetVerPending("T6", map[string]uint64{"acct1": 2}))
	if _, err := s.SetVersion("acct2", 7); err != nil {
		t.Fatal(err)
	}
	must(s.ClearAwait("T4"))
	must(s.SetOutcome(txn.ID("T6"), false))
	must(s.SettleVersions("T6", false))
	return s.WALBytes()
}

func TestCrashRecoveryFrontier(t *testing.T) {
	data := richWAL(t)
	rep := FrontierSweep(data)
	if rep.Frames < 15 {
		t.Fatalf("rich WAL only produced %d frames; sweep too thin", rep.Frames)
	}
	if rep.Prefixes != rep.Frames+1 {
		t.Fatalf("recovered %d prefixes, want %d", rep.Prefixes, rep.Frames+1)
	}
	if rep.Torn == 0 {
		t.Fatal("no torn variants swept")
	}
	if !rep.Ok() {
		t.Fatalf("%s\n%v", rep, rep.Violations)
	}
}

func TestFrontierSweepEmptyAndGarbage(t *testing.T) {
	if rep := FrontierSweep(nil); !rep.Ok() || rep.Frames != 0 {
		t.Fatalf("empty sweep: %s %v", rep, rep.Violations)
	}
	// Pure garbage has no well-formed prefix beyond the empty one.
	rep := FrontierSweep([]byte("not a wal at all"))
	if rep.Frames != 0 || !rep.Ok() {
		t.Fatalf("garbage sweep: %s %v", rep, rep.Violations)
	}
}

func TestFrontierSweepFlagsMidStreamDamage(t *testing.T) {
	data := richWAL(t)
	// frameBoundaries walks only the parseable prefix, so damage to a
	// frame's length varint hides the rest of the stream from the sweep
	// — but damage to a payload byte keeps the framing intact and must
	// surface as a violation (the CRC fails mid-stream).
	if len(data) < 40 {
		t.Fatal("wal too small")
	}
	bounds := frameBoundaries(data)
	// Corrupt a payload byte inside the second frame (past its varint).
	off := bounds[1] + 3
	mut := append([]byte(nil), data...)
	mut[off] ^= 0xFF
	rep := FrontierSweep(mut)
	if rep.Ok() {
		t.Fatal("sweep over damaged stream reported clean")
	}
}
