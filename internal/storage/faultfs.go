// Disk fault plane: the FS seam every durable-storage code path goes
// through, plus FaultFS — a seeded, declarative fault injector over any
// FS, mirroring the transport plane's fault.Injector.  Rules are
// per-path (substring match) and per-operation:
//
//	fsync   — File.Sync / SyncDir fails (the fsyncgate scenario: the
//	          kernel may already have dropped the dirty pages)
//	torn    — a Write persists only a prefix of its bytes and fails,
//	          the on-disk image a power cut mid-append leaves behind
//	          (generalizing FileLog.TearNext to a probabilistic plane)
//	enospc  — a Write fails up front with ENOSPC, nothing persisted
//	readflip— ReadFile flips one byte of the returned data (latent
//	          sector corruption / page-cache damage on the read path;
//	          the medium itself is untouched, so a re-read can differ)
//	slow    — writes, syncs and reads stall for a uniform duration
//	          (gray failure: the disk that is not dead, just dying)
//
// One seeded PRNG drives every probabilistic decision, so a fixed seed
// and a fixed schedule of operations injects the same faults the same
// way.  Rules may be one-shot (Once: disarm after the first hit) or
// sticky (after the first hit the rule fires on every later match —
// a failed sector stays failed).
package storage

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/metrics"
)

// ErrInjected marks every error produced by FaultFS, so tests and
// harnesses can tell injected faults from real infrastructure failures.
var ErrInjected = errors.New("storage: injected disk fault")

// IsInjected reports whether err is (or wraps) an injected disk fault.
func IsInjected(err error) bool { return errors.Is(err, ErrInjected) }

// File is the subset of *os.File the storage layer writes through.
type File interface {
	io.Writer
	Sync() error
	Close() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
	Name() string
}

// FS abstracts the file operations FileLog, OpenFileStore and
// CheckpointFile perform, so a fault injector (FaultFS) can interpose
// on every byte headed to or from the durable medium.  OSFS is the real
// filesystem.
type FS interface {
	// OpenAppend opens (creating if needed) path for appending.
	OpenAppend(path string) (File, error)
	// ReadFile reads the whole file; a missing file returns an error
	// satisfying os.IsNotExist.
	ReadFile(path string) ([]byte, error)
	// CreateTemp creates a new temp file in dir (pattern as os.CreateTemp).
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// Truncate shortens the file at path to size bytes.
	Truncate(path string, size int64) error
	// SyncDir fsyncs the directory itself, making renames within it
	// durable (a rename without it can be lost to a power cut).
	SyncDir(dir string) error
}

// osFS is the passthrough FS over the real filesystem.
type osFS struct{}

// OSFS is the real filesystem; the default when no fault plane is
// configured.
var OSFS FS = osFS{}

func (osFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}
func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }
func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error             { return os.Remove(path) }
func (osFS) Truncate(path string, size int64) error {
	return os.Truncate(path, size)
}
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("storage: open dir for sync: %w", err)
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return fmt.Errorf("storage: sync dir %s: %w", dir, err)
	}
	return d.Close()
}

// Disk fault kinds.
const (
	DiskFsync    = "fsync"
	DiskTorn     = "torn"
	DiskENOSPC   = "enospc"
	DiskReadFlip = "readflip"
	DiskSlow     = "slow"
)

// DiskRule is one probabilistic disk fault: with probability P, apply
// Kind to operations touching any path containing Path ("" or "*"
// matches every path).
type DiskRule struct {
	Kind string
	Path string
	P    float64
	// Once disarms the rule after its first hit — the transient fault
	// (a single failed fsync, one damaged read).
	Once bool
	// Sticky converts the rule to always-fire after its first hit — the
	// persistent fault (a sector that stays bad, a disk that stays
	// full).  Overrides Once.
	Sticky bool
	// MinDelay/MaxDelay bound the stall of a slow rule.
	MinDelay time.Duration
	MaxDelay time.Duration

	// stuck marks a sticky rule that has fired.
	stuck bool
}

func (r DiskRule) matches(path string) bool {
	return r.Path == "" || r.Path == "*" || strings.Contains(path, r.Path)
}

func (r DiskRule) String() string {
	s := fmt.Sprintf("%s path=%s p=%g", r.Kind, orStar(r.Path), r.P)
	if r.Kind == DiskSlow {
		s += fmt.Sprintf(" min=%s max=%s", r.MinDelay, r.MaxDelay)
	}
	if r.Sticky {
		s += " sticky"
		if r.stuck {
			s += "(fired)"
		}
	} else if r.Once {
		s += " once"
	}
	return s
}

func orStar(p string) string {
	if p == "" {
		return "*"
	}
	return p
}

// FaultFSConfig parameterizes a FaultFS.
type FaultFSConfig struct {
	// Seed drives every probabilistic decision.  Equal seeds + equal
	// operation sequences ⇒ equal faults.
	Seed int64
	// Metrics, when set, receives storage.fault.injected{kind=...}
	// counters.
	Metrics *metrics.Registry
	// Logf, when set, receives one line per injected fault.
	Logf func(format string, args ...any)
}

// FaultFS implements FS by delegating to an inner FS through a mutable
// disk-fault plan.  Safe for concurrent use.
type FaultFS struct {
	inner FS
	cfg   FaultFSConfig

	mu     sync.Mutex
	rng    *rand.Rand
	rules  []DiskRule
	counts map[string]int64
}

// NewFaultFS builds a fault injector over inner (OSFS when nil).
func NewFaultFS(inner FS, cfg FaultFSConfig) *FaultFS {
	if inner == nil {
		inner = OSFS
	}
	return &FaultFS{
		inner:  inner,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		counts: map[string]int64{},
	}
}

// SetRule installs r, replacing any existing rule with the same
// (Kind, Path).  P <= 0 removes the rule instead.
func (f *FaultFS) SetRule(r DiskRule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, old := range f.rules {
		if old.Kind == r.Kind && old.Path == r.Path {
			if r.P <= 0 {
				f.rules = append(f.rules[:i], f.rules[i+1:]...)
			} else {
				f.rules[i] = r
			}
			return
		}
	}
	if r.P > 0 {
		f.rules = append(f.rules, r)
	}
}

// Clear removes every rule: the plan becomes a no-op.
func (f *FaultFS) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
}

// Reseed restarts the PRNG (for reproducing a schedule mid-session).
func (f *FaultFS) Reseed(seed int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rng = rand.New(rand.NewSource(seed))
}

// Counts snapshots the per-kind injection counters.
func (f *FaultFS) Counts() map[string]int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]int64, len(f.counts))
	for k, v := range f.counts {
		out[k] = v
	}
	return out
}

// Status renders the active plan and injection counts as stable text.
func (f *FaultFS) Status() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	var b strings.Builder
	if len(f.rules) == 0 {
		b.WriteString("no active disk faults\n")
	}
	for _, r := range f.rules {
		fmt.Fprintf(&b, "rule %s\n", r)
	}
	kinds := make([]string, 0, len(f.counts))
	for k := range f.counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&b, "injected{kind=%s} %d\n", k, f.counts[k])
	}
	return b.String()
}

// hit samples the plan for one (kind, path) operation; a hit counts,
// logs, and advances the rule's one-shot/sticky state.
func (f *FaultFS) hit(kind, path string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range f.rules {
		r := &f.rules[i]
		if r.Kind != kind || !r.matches(path) {
			continue
		}
		if !r.stuck && f.rng.Float64() >= r.P {
			continue
		}
		if r.Sticky {
			r.stuck = true
		} else if r.Once {
			f.rules = append(f.rules[:i], f.rules[i+1:]...)
		}
		f.noteLocked(kind, path)
		return true
	}
	return false
}

// stall sleeps a slow-rule delay for one (path) operation, if any.
func (f *FaultFS) stall(path string) {
	f.mu.Lock()
	var d time.Duration
	for i := range f.rules {
		r := &f.rules[i]
		if r.Kind != DiskSlow || !r.matches(path) {
			continue
		}
		if !r.stuck && f.rng.Float64() >= r.P {
			continue
		}
		if r.Sticky {
			r.stuck = true
		} else if r.Once {
			f.rules = append(f.rules[:i], f.rules[i+1:]...)
		}
		d = r.MinDelay
		if r.MaxDelay > r.MinDelay {
			d += time.Duration(f.rng.Int63n(int64(r.MaxDelay - r.MinDelay)))
		}
		f.noteLocked(DiskSlow, path)
		break
	}
	f.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
}

func (f *FaultFS) noteLocked(kind, path string) {
	f.counts[kind]++
	if f.cfg.Metrics != nil {
		f.cfg.Metrics.Counter("storage.fault.injected", metrics.L("kind", kind)).Inc()
	}
	if f.cfg.Logf != nil {
		f.cfg.Logf("diskfault: %s %s", kind, path)
	}
}

// flip corrupts one byte of data in place with readflip-rule probability;
// reports whether it did.
func (f *FaultFS) flip(path string, data []byte) bool {
	if len(data) == 0 || !f.hit(DiskReadFlip, path) {
		return false
	}
	f.mu.Lock()
	i := f.rng.Intn(len(data))
	f.mu.Unlock()
	data[i] ^= 0xFF
	return true
}

// --- FS surface -------------------------------------------------------

func (f *FaultFS) OpenAppend(path string) (File, error) {
	inner, err := f.inner.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner, path: path, tornAt: -1}, nil
}

func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	f.stall(path)
	data, err := f.inner.ReadFile(path)
	if err != nil {
		return data, err
	}
	// Flip a copy: the damage is in the read path (page cache, bus,
	// firmware), not on the medium, so a later re-read may come back
	// clean — exactly the transient corruption recovery must survive.
	if f.flip(path, data) {
		// data already mutated in place; ReadFile returned a private copy.
		return data, nil
	}
	return data, nil
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	inner, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner, path: inner.Name(), tornAt: -1}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(path string) error { return f.inner.Remove(path) }

func (f *FaultFS) Truncate(path string, size int64) error {
	return f.inner.Truncate(path, size)
}

func (f *FaultFS) SyncDir(dir string) error {
	f.stall(dir)
	if f.hit(DiskFsync, dir) {
		return fmt.Errorf("%w: fsync failure on dir %s: %w", ErrInjected, dir, syscall.EIO)
	}
	return f.inner.SyncDir(dir)
}

var _ FS = (*FaultFS)(nil)

// faultFile interposes write/sync faults on one open file.  A torn
// write leaves a real fragment on disk and remembers its offset, so the
// next write truncates it first — the same repair crash recovery
// performs — keeping the file parseable for whoever reopens it.
type faultFile struct {
	fs    *FaultFS
	inner File
	path  string

	mu     sync.Mutex
	tornAt int64
}

func (f *faultFile) Write(p []byte) (int, error) {
	f.fs.stall(f.path)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.tornAt >= 0 {
		if err := f.inner.Truncate(f.tornAt); err != nil {
			return 0, fmt.Errorf("storage: truncate injected torn tail: %w", err)
		}
		f.tornAt = -1
	}
	if f.fs.hit(DiskENOSPC, f.path) {
		return 0, fmt.Errorf("%w: write on %s: %w", ErrInjected, f.path, syscall.ENOSPC)
	}
	if f.fs.hit(DiskTorn, f.path) {
		if st, err := f.inner.Stat(); err == nil {
			f.tornAt = st.Size()
		}
		n, werr := f.inner.Write(p[:len(p)/2])
		serr := f.inner.Sync()
		err := fmt.Errorf("%w: %w on %s", ErrInjected, ErrTornWrite, f.path)
		if werr != nil || serr != nil {
			err = fmt.Errorf("%w (write: %v, sync: %v)", err, werr, serr)
		}
		return n, err
	}
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error {
	f.fs.stall(f.path)
	if f.fs.hit(DiskFsync, f.path) {
		return fmt.Errorf("%w: fsync failure on %s: %w", ErrInjected, f.path, syscall.EIO)
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error               { return f.inner.Close() }
func (f *faultFile) Truncate(size int64) error  { return f.inner.Truncate(size) }
func (f *faultFile) Stat() (os.FileInfo, error) { return f.inner.Stat() }
func (f *faultFile) Name() string               { return f.inner.Name() }

var _ File = (*faultFile)(nil)
