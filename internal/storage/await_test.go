package storage

import (
	"testing"

	"repro/internal/polyvalue"
	"repro/internal/value"
)

func TestAwaitLifecycle(t *testing.T) {
	s := NewStore()
	if _, ok := s.Await("T1"); ok {
		t.Error("empty store has await entry")
	}
	if err := s.SetAwait("T1", "coordA"); err != nil {
		t.Fatal(err)
	}
	coord, ok := s.Await("T1")
	if !ok || coord != "coordA" {
		t.Errorf("Await = %q,%v", coord, ok)
	}
	all := s.Awaits()
	if len(all) != 1 || all["T1"] != "coordA" {
		t.Errorf("Awaits = %v", all)
	}
	if err := s.ClearAwait("T1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Await("T1"); ok {
		t.Error("await survived clear")
	}
	// Clearing an absent entry is a cheap no-op (no WAL record).
	before := s.WALSize()
	if err := s.ClearAwait("T9"); err != nil {
		t.Fatal(err)
	}
	if s.WALSize() != before {
		t.Error("no-op clear wrote a record")
	}
}

func TestAwaitSurvivesCrash(t *testing.T) {
	s := NewStore()
	s.SetAwait("T1", "coordA")
	s.SetAwait("T2", "coordB")
	s.ClearAwait("T2")
	r, err := Recover(s.WALBytes())
	if err != nil {
		t.Fatal(err)
	}
	coord, ok := r.Await("T1")
	if !ok || coord != "coordA" {
		t.Errorf("recovered await = %q,%v", coord, ok)
	}
	if _, ok := r.Await("T2"); ok {
		t.Error("cleared await resurrected")
	}
}

func TestAwaitSurvivesCheckpoint(t *testing.T) {
	s := NewStore()
	s.SetAwait("T1", "coordA")
	for i := 0; i < 50; i++ {
		s.Put("x", polyvalue.Simple(value.Int(int64(i))))
	}
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	r, err := Recover(s.WALBytes())
	if err != nil {
		t.Fatal(err)
	}
	if coord, ok := r.Await("T1"); !ok || coord != "coordA" {
		t.Error("await lost by checkpoint")
	}
}
