package storage

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/polyvalue"
	"repro/internal/value"
)

// buildLog returns a WAL with n puts (x0..x(n-1)) and the record
// boundaries (byte offset after each record).
func buildLog(t *testing.T, n int) ([]byte, []int) {
	t.Helper()
	s := NewStore()
	var bounds []int
	for i := 0; i < n; i++ {
		if err := s.Put(item(i), polyvalue.Simple(value.Int(int64(i)))); err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, len(s.WALBytes()))
	}
	return append([]byte(nil), s.WALBytes()...), bounds
}

func item(i int) string { return string(rune('a'+i)) + "x" }

// TestRecoverBitFlipTruncatesAtFirstBadRecord: corruption in the middle
// of the log yields the intact-prefix store plus ErrCorruptRecord, and
// the returned store's own WAL holds only the good prefix.
func TestRecoverBitFlipTruncatesAtFirstBadRecord(t *testing.T) {
	data, bounds := buildLog(t, 5)
	// Flip a byte inside record 2's payload (just after record 1's end,
	// past the uvarint length, within payload).
	off := bounds[1] + 2
	data[off] ^= 0xFF

	s, err := Recover(data)
	if err == nil {
		t.Fatal("mid-log corruption not reported")
	}
	if !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("error %v does not wrap ErrCorruptRecord", err)
	}
	if s == nil {
		t.Fatal("no prefix store returned alongside ErrCorruptRecord")
	}
	// Records 0 and 1 survive; 2.. are truncated away.
	for i := 0; i < 2; i++ {
		if !s.Has(item(i)) {
			t.Errorf("prefix record %d lost", i)
		}
	}
	for i := 2; i < 5; i++ {
		if s.Has(item(i)) {
			t.Errorf("record %d at/after the corruption survived", i)
		}
	}
	// The prefix store's own WAL is clean: recovery is idempotent.
	s2, err := Recover(s.WALBytes())
	if err != nil {
		t.Fatalf("prefix WAL recovery: %v", err)
	}
	if len(s2.Items()) != len(s.Items()) {
		t.Fatalf("prefix store not self-consistent: %d vs %d items", len(s2.Items()), len(s.Items()))
	}
}

// TestRecoverToleratesTornTail: truncating the final record at every
// possible byte boundary recovers the full prefix without error.
func TestRecoverToleratesTornTail(t *testing.T) {
	data, bounds := buildLog(t, 3)
	for cut := bounds[1] + 1; cut < len(data); cut++ {
		s, err := Recover(data[:cut])
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		for i := 0; i < 2; i++ {
			if !s.Has(item(i)) {
				t.Fatalf("cut at %d: prefix record %d lost", cut, i)
			}
		}
		if s.Has(item(2)) {
			t.Fatalf("cut at %d: torn record partially applied", cut)
		}
	}
}

// TestRecoverCorruptFinalRecordIsTornTail: a CRC failure on the very
// last record counts as a torn tail (no error), since a crash mid-write
// can damage exactly that record.
func TestRecoverCorruptFinalRecordIsTornTail(t *testing.T) {
	data, bounds := buildLog(t, 3)
	data[bounds[2]-1] ^= 0xFF // last byte of the final record's CRC
	s, err := Recover(data)
	if err != nil {
		t.Fatalf("corrupt final record reported as error: %v", err)
	}
	if !s.Has(item(1)) || s.Has(item(2)) {
		t.Fatal("prefix not preserved or torn record applied")
	}
}

// TestFileLogTearNext: an armed tear persists half the frame, errors
// with ErrTornWrite, and recovery from the file replays only the
// intact prefix — the on-disk image of a crash mid-append.
func TestFileLogTearNext(t *testing.T) {
	path := filepath.Join(t.TempDir(), "site.wal")
	s, log, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("ax", polyvalue.Simple(value.Int(1))); err != nil {
		t.Fatal(err)
	}
	log.TearNext()
	err = s.Put("bx", polyvalue.Simple(value.Int(2)))
	if !IsTornWrite(err) {
		t.Fatalf("torn write error = %v, want ErrTornWrite", err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rec, log2, err := OpenFileStore(path)
	if err != nil {
		t.Fatalf("recovery over torn tail (%d bytes): %v", len(data), err)
	}
	defer log2.Close()
	if !rec.Has("ax") {
		t.Error("intact prefix record lost")
	}
	if rec.Has("bx") {
		t.Error("torn record applied on recovery")
	}
	// Memory never ran ahead of disk: the store that suffered the torn
	// write must not hold bx either (sink-first append ordering).
	if s.Has("bx") {
		t.Error("in-memory store applied the torn record")
	}

	// Recovery truncated the fragment: appends through the recovered
	// store land on a clean boundary and a third generation sees them.
	if err := rec.Put("cx", polyvalue.Simple(value.Int(3))); err != nil {
		t.Fatal(err)
	}
	if err := log2.Close(); err != nil {
		t.Fatal(err)
	}
	third, log3, err := OpenFileStore(path)
	if err != nil {
		t.Fatalf("third-generation recovery: %v", err)
	}
	defer log3.Close()
	if !third.Has("ax") || !third.Has("cx") || third.Has("bx") {
		t.Errorf("third generation state: ax=%v bx=%v cx=%v",
			third.Has("ax"), third.Has("bx"), third.Has("cx"))
	}
}

// TestFileLogWriteAfterTearHealsInPlace: when the SAME process keeps
// using the log after a torn write (a simulated site restarting without
// reopening the file), the next append first truncates the fragment —
// the disk image stays parseable.
func TestFileLogWriteAfterTearHealsInPlace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "site.wal")
	s, log, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	if err := s.Put("ax", polyvalue.Simple(value.Int(1))); err != nil {
		t.Fatal(err)
	}
	log.TearNext()
	if err := s.Put("bx", polyvalue.Simple(value.Int(2))); !IsTornWrite(err) {
		t.Fatalf("torn write error = %v", err)
	}
	if err := s.Put("cx", polyvalue.Simple(value.Int(3))); err != nil {
		t.Fatal(err)
	}
	if err := log.Sync(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(data)
	if err != nil {
		t.Fatalf("recovery after in-place heal: %v", err)
	}
	if !rec.Has("ax") || !rec.Has("cx") || rec.Has("bx") {
		t.Errorf("healed log state: ax=%v bx=%v cx=%v",
			rec.Has("ax"), rec.Has("bx"), rec.Has("cx"))
	}
}

// FuzzRecover: Recover over arbitrary (often corrupt) bytes never
// panics and always returns a usable store — on a typed corruption
// error the prefix store must itself recover cleanly.
func FuzzRecover(f *testing.F) {
	seed := NewStore()
	seed.Put("x", polyvalue.Simple(value.Int(1)))
	seed.SetOutcome("T2", true)
	seed.AddDepSite("T3", "s2")
	seed.SetAwait("T4", "c")
	good := seed.WALBytes()
	f.Add(append([]byte(nil), good...), 0, byte(0))
	f.Add(append([]byte(nil), good...), 3, byte(0xFF))
	f.Add([]byte{}, 0, byte(0))
	f.Add([]byte{0x01, 0xff, 0x00}, 1, byte(0x80))
	f.Fuzz(func(t *testing.T, data []byte, flipAt int, mask byte) {
		if len(data) > 0 {
			data[abs(flipAt)%len(data)] ^= mask
		}
		s, err := Recover(data)
		if err != nil {
			if !errors.Is(err, ErrCorruptRecord) {
				t.Fatalf("untyped recovery error: %v", err)
			}
			if s == nil {
				t.Fatal("corrupt log returned no prefix store")
			}
		}
		if s == nil {
			t.Fatal("nil store with nil error")
		}
		// Whatever came back must be self-consistent.
		s2, err2 := Recover(s.WALBytes())
		if err2 != nil {
			t.Fatalf("second-generation recovery failed: %v", err2)
		}
		if len(s2.Items()) != len(s.Items()) {
			t.Fatalf("item count changed: %d vs %d", len(s.Items()), len(s2.Items()))
		}
	})
}

func abs(i int) int {
	if i < 0 {
		return -i
	}
	return i
}
