package storage

import (
	"testing"

	"repro/internal/polyvalue"
	"repro/internal/value"
)

// FuzzReplay: arbitrary bytes fed to WAL replay must never panic and
// never yield an error-free store whose own log fails to recover (the
// recovered state must be re-recoverable).
func FuzzReplay(f *testing.F) {
	seed := NewStore()
	seed.Put("x", polyvalue.Simple(value.Int(1)))
	seed.MarkPrepared(Prepared{TID: "T1", Coordinator: "c",
		Writes:   map[string]polyvalue.Poly{"x": polyvalue.Simple(value.Int(2))},
		Previous: map[string]polyvalue.Poly{"x": polyvalue.Simple(value.Int(1))}})
	seed.SetOutcome("T2", true)
	seed.AddDepItem("T3", "x")
	seed.AddDepSite("T3", "s2")
	seed.SetAwait("T4", "c")
	f.Add(seed.WALBytes())
	f.Add([]byte{})
	f.Add([]byte{0x01, 0xff, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Recover(data)
		if err != nil {
			return
		}
		// The recovered store's own log must recover to the same state.
		s2, err := Recover(s.WALBytes())
		if err != nil {
			t.Fatalf("second-generation recovery failed: %v", err)
		}
		if len(s2.Items()) != len(s.Items()) {
			t.Fatalf("item count changed: %d vs %d", len(s.Items()), len(s2.Items()))
		}
		for _, item := range s.Items() {
			if !s2.Get(item).Equal(s.Get(item)) {
				t.Fatalf("item %q changed across recovery", item)
			}
		}
	})
}
