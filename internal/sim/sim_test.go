package sim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/model"
)

var base = model.Params{U: 10, F: 0.01, I: 10000, R: 0.01, Y: 0, D: 1}

func TestDeterministicForSeed(t *testing.T) {
	p := Params{Model: base, Seed: 42, Warmup: 500, Measure: 2000}
	a, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanPolyvalues != b.MeanPolyvalues || a.Transactions != b.Transactions ||
		a.Failed != b.Failed || a.MaxPolyvalues != b.MaxPolyvalues ||
		a.PolyTransactions != b.PolyTransactions {
		t.Errorf("same seed diverged:\n%+v\n%+v", a, b)
	}
	p.Seed = 43
	c, _ := Run(p)
	if a.MeanPolyvalues == c.MeanPolyvalues && a.Transactions == c.Transactions {
		t.Error("different seeds produced identical runs")
	}
}

func TestInvalidParamsRejected(t *testing.T) {
	if _, err := Run(Params{Model: model.Params{U: -1, F: 0.1, I: 10, R: 0.1}}); err == nil {
		t.Error("invalid params accepted")
	}
}

// TestTracksModelPrediction: for the paper's main Table 2 row the
// simulated mean must land near the model prediction, from below-or-near
// (the paper: "the number of polyvalues obtained in the simulation is in
// general smaller than predicted").
func TestTracksModelPrediction(t *testing.T) {
	r, err := Run(Params{Model: base, Seed: 7, Warmup: 2000, Measure: 30000})
	if err != nil {
		t.Fatal(err)
	}
	predicted := base.SteadyState() // 11.11
	if r.MeanPolyvalues < predicted*0.5 || r.MeanPolyvalues > predicted*1.25 {
		t.Errorf("mean %g too far from prediction %g", r.MeanPolyvalues, predicted)
	}
}

// TestFailureRateObserved: the failed fraction approaches F.
func TestFailureRateObserved(t *testing.T) {
	r, err := Run(Params{Model: base, Seed: 3, Warmup: 100, Measure: 20000})
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(r.Failed) / float64(r.Transactions)
	if math.Abs(frac-base.F) > base.F*0.25 {
		t.Errorf("failure fraction %g, want ≈ %g", frac, base.F)
	}
	// Roughly U transactions per simulated second.
	rate := float64(r.Transactions) / r.SimulatedSeconds
	if math.Abs(rate-base.U) > base.U*0.1 {
		t.Errorf("arrival rate %g, want ≈ %g", rate, base.U)
	}
}

// TestZeroFailureMeansZeroPolyvalues: with F=0 no uncertainty ever
// enters the database.
func TestZeroFailureMeansZeroPolyvalues(t *testing.T) {
	p := base
	p.F = 0
	r, err := Run(Params{Model: p, Seed: 1, Warmup: 100, Measure: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanPolyvalues != 0 || r.MaxPolyvalues != 0 || r.Failed != 0 {
		t.Errorf("F=0 produced polyvalues: %+v", r)
	}
}

// TestFastRecoveryShrinksPopulation: increasing R lowers the mean count
// (the model's central sensitivity).
func TestFastRecoveryShrinksPopulation(t *testing.T) {
	slow := base
	slow.R = 0.005
	fast := base
	fast.R = 0.05
	rs, err := Run(Params{Model: slow, Seed: 5, Warmup: 2000, Measure: 20000})
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Run(Params{Model: fast, Seed: 5, Warmup: 2000, Measure: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if rf.MeanPolyvalues >= rs.MeanPolyvalues {
		t.Errorf("fast recovery %g not below slow recovery %g", rf.MeanPolyvalues, rs.MeanPolyvalues)
	}
}

// TestDependencySpreadsUncertainty: with large D, successful
// transactions propagate polyvalues (PolySpread > 0) and the population
// exceeds the D=0 case.
func TestDependencySpreadsUncertainty(t *testing.T) {
	wide := base
	wide.D = 5
	r, err := Run(Params{Model: wide, Seed: 11, Warmup: 2000, Measure: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if r.PolySpread == 0 || r.PolyTransactions == 0 {
		t.Errorf("no propagation observed: %+v", r)
	}
	narrow := base
	narrow.D = 0
	rn, err := Run(Params{Model: narrow, Seed: 11, Warmup: 2000, Measure: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanPolyvalues <= rn.MeanPolyvalues {
		t.Errorf("D=5 population %g not above D=0 population %g", r.MeanPolyvalues, rn.MeanPolyvalues)
	}
}

// TestOverwriteEliminatesUncertainty: Y=1 (new values never depend on
// the old) lowers the population versus Y=0 at the same D, matching the
// model's −UY·P/I term...  with D=5 so the effect is visible.
func TestOverwriteEliminatesUncertainty(t *testing.T) {
	keep := base
	keep.D = 5
	drop := keep
	drop.Y = 1
	rk, err := Run(Params{Model: keep, Seed: 13, Warmup: 2000, Measure: 30000})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Run(Params{Model: drop, Seed: 13, Warmup: 2000, Measure: 30000})
	if err != nil {
		t.Fatal(err)
	}
	if rd.MeanPolyvalues >= rk.MeanPolyvalues {
		t.Errorf("Y=1 population %g not below Y=0 population %g", rd.MeanPolyvalues, rk.MeanPolyvalues)
	}
}

func TestDefaultsApplied(t *testing.T) {
	r, err := Run(Params{Model: base, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.SimulatedSeconds <= 0 {
		t.Errorf("defaults broken: %+v", r)
	}
}

func TestTable2Definition(t *testing.T) {
	rows := Table2()
	if len(rows) != 6 {
		t.Fatalf("Table 2 has %d rows, paper prints 6", len(rows))
	}
	for i, row := range rows {
		if err := row.Params.Validate(); err != nil {
			t.Errorf("row %d invalid: %v", i, err)
		}
		// Predicted column must equal the closed form.
		got := row.Params.SteadyState()
		if math.Abs(got-row.PaperPredicted)/row.PaperPredicted > 0.01 {
			t.Errorf("row %d predicted %g, paper %g", i, got, row.PaperPredicted)
		}
		// The paper's simulation never exceeded its prediction by much.
		if row.PaperActual > row.PaperPredicted*1.05 {
			t.Errorf("row %d paper actual %g above predicted %g", i, row.PaperActual, row.PaperPredicted)
		}
	}
}

// TestRunTable2Shape is the repository's Table 2 reproduction at test
// scale: every measured value within a factor band of the prediction and
// below-or-near it, reproducing the paper's qualitative claim.  The
// full-length run lives in the benchmark harness.
func TestRunTable2Shape(t *testing.T) {
	results, err := RunTable2(100, 1500, 15000)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		pred := res.Row.PaperPredicted
		got := res.Measured.MeanPolyvalues
		if got > pred*1.35 {
			t.Errorf("row %d: measured %g far above predicted %g", i, got, pred)
		}
		if got < pred*0.3 {
			t.Errorf("row %d: measured %g far below predicted %g", i, got, pred)
		}
	}
	out := FormatTable2(results)
	if !strings.Contains(out, "predicted") || strings.Count(out, "\n") != 7 {
		t.Errorf("FormatTable2 output wrong:\n%s", out)
	}
}

func TestRunTable2Multi(t *testing.T) {
	stats, err := RunTable2Multi(3, 50, 800, 6000)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 6 {
		t.Fatalf("rows = %d", len(stats))
	}
	for i, s := range stats {
		if s.Runs != 3 {
			t.Errorf("row %d runs = %d", i, s.Runs)
		}
		if s.Mean <= 0 {
			t.Errorf("row %d mean = %g", i, s.Mean)
		}
		if s.StdErr < 0 {
			t.Errorf("row %d stderr = %g", i, s.StdErr)
		}
		// Mean within a loose band of the prediction even at short runs.
		if s.Mean > s.Row.PaperPredicted*1.6 || s.Mean < s.Row.PaperPredicted*0.3 {
			t.Errorf("row %d mean %g far from predicted %g", i, s.Mean, s.Row.PaperPredicted)
		}
	}
	out := FormatTable2Multi(stats)
	if !strings.Contains(out, "±") || strings.Count(out, "\n") != 7 {
		t.Errorf("FormatTable2Multi:\n%s", out)
	}
	if _, err := RunTable2Multi(1, 1, 100, 100); err == nil {
		t.Error("runs=1 accepted")
	}
}

func TestResultString(t *testing.T) {
	r := Result{MeanPolyvalues: 1.5, MaxPolyvalues: 3, Transactions: 10}
	if !strings.Contains(r.String(), "meanP=1.50") {
		t.Errorf("String = %q", r.String())
	}
}
