// Package sim reimplements §4.2 of the paper: a discrete-event simulation
// of a database using the polyvalue mechanism, tracking which items hold
// polyvalues and which transaction outcomes they depend on.
//
// Faithful to the paper's description:
//
//   - transactions are introduced at rate U;
//   - each transaction updates a single item chosen uniformly at random;
//   - the update depends on d items, also chosen uniformly, with d drawn
//     from an exponential distribution of mean D;
//   - the previous value of the updated item is included in its new value
//     with probability (1−Y);
//   - transactions fail with probability F; a failed transaction creates
//     a polyvalue for its updated item and a recovery time is drawn from
//     an exponential distribution of mean 1/R;
//   - each polyvalued item is tagged with the identities of all
//     transactions its value depends on; recovery removes the recovered
//     transaction's tag everywhere, and untagged polyvalues become simple.
//
// The polyvalue count is measured as a time-weighted average over a
// window that starts after a warm-up period, matching the paper's "run
// ... until the number of polyvalues has remained stable for some time,
// and then taking the average".
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/metrics"
	"repro/internal/model"
)

// Params configures one simulation run.
type Params struct {
	// Model carries the six §4.1 database parameters.
	Model model.Params
	// Seed drives all randomness; equal seeds give identical runs.
	Seed int64
	// Warmup is the simulated seconds discarded before measurement.  0
	// picks several settling times automatically.
	Warmup float64
	// Measure is the simulated seconds of the measurement window.  0
	// picks a default long enough for tight averages.
	Measure float64
	// InitialPolyvalues seeds the database with a burst of polyvalued
	// items at t=0 (each tagged with its own pending transaction whose
	// recovery is drawn from Exp(1/R)).  Models the paper's "serious
	// failure causing the introduction of many polyvalues", whose decay
	// the §4.1 transient predicts.
	InitialPolyvalues int
	// SampleEvery, when positive, records the polyvalue count every
	// that-many simulated seconds into Result.Series.
	SampleEvery float64
	// Metrics, when set, receives sim.* series: arrival/failure counters,
	// the live polyvalue-population gauge, and the per-item polyvalue
	// lifetime histogram (install → last tag removed, simulated seconds).
	Metrics *metrics.Registry
}

// PopSample is one point of the population time series.
type PopSample struct {
	T float64
	P int
}

// Result reports one run's measurements.
type Result struct {
	// MeanPolyvalues is the time-weighted average polyvalue count over
	// the measurement window — the paper's "Actual P".
	MeanPolyvalues float64
	// MaxPolyvalues is the peak count over the whole run.
	MaxPolyvalues int
	// FinalPolyvalues is the count when the run ended.
	FinalPolyvalues int
	// Transactions and Failed count arrivals and failures.
	Transactions int64
	Failed       int64
	// PolyTransactions counts transactions that read at least one
	// polyvalued input — the §3.2 events that propagate uncertainty.
	PolyTransactions int64
	// PolySpread counts polyvalues created by propagation alone (a
	// successful transaction whose inputs were uncertain).
	PolySpread int64
	// SimulatedSeconds is total simulated time (warmup + measurement).
	SimulatedSeconds float64
	// Series is the sampled population over time (when SampleEvery > 0).
	Series []PopSample
}

// recovery is a pending failure-recovery event.
type recovery struct {
	at  float64
	tid int64
}

type recoveryHeap []recovery

func (h recoveryHeap) Len() int           { return len(h) }
func (h recoveryHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h recoveryHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *recoveryHeap) Push(x any)        { *h = append(*h, x.(recovery)) }
func (h *recoveryHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// state is the simulated database: only uncertainty is represented, as in
// the paper's simulation ("maintained a description of the items of the
// database having polyvalues, and the transactions on which those items
// depended").
type state struct {
	// tags maps a polyvalued item to the set of transactions its value
	// depends on.  Absent items are simple.
	tags map[int64]map[int64]bool
	// holders maps a pending transaction to the items tagged with it.
	holders map[int64]map[int64]bool
}

func newState() *state {
	return &state{tags: map[int64]map[int64]bool{}, holders: map[int64]map[int64]bool{}}
}

// setTags replaces an item's tag set (empty or nil clears it).
func (s *state) setTags(item int64, tids map[int64]bool) {
	if old, ok := s.tags[item]; ok {
		for tid := range old {
			delete(s.holders[tid], item)
			if len(s.holders[tid]) == 0 {
				delete(s.holders, tid)
			}
		}
		delete(s.tags, item)
	}
	if len(tids) == 0 {
		return
	}
	s.tags[item] = tids
	for tid := range tids {
		h, ok := s.holders[tid]
		if !ok {
			h = map[int64]bool{}
			s.holders[tid] = h
		}
		h[item] = true
	}
}

// recover removes tid's tag from every item; items left untagged become
// simple.  It returns the items that became simple, for lifetime
// bookkeeping.
func (s *state) recover(tid int64) []int64 {
	var cleared []int64
	for item := range s.holders[tid] {
		delete(s.tags[item], tid)
		if len(s.tags[item]) == 0 {
			delete(s.tags, item)
			cleared = append(cleared, item)
		}
	}
	delete(s.holders, tid)
	return cleared
}

func (s *state) polyCount() int { return len(s.tags) }

// Run executes one simulation.
func Run(p Params) (Result, error) {
	if err := p.Model.Validate(); err != nil {
		return Result{}, err
	}
	m := p.Model
	warmup := p.Warmup
	if warmup <= 0 {
		if st := m.SettlingTime(0.01); !math.IsInf(st, 1) {
			warmup = 5 * st
		} else {
			warmup = 1000
		}
	}
	measure := p.Measure
	if measure <= 0 {
		// Long enough to smooth over recovery times: ≥ 200 mean
		// recoveries and ≥ 2000 seconds.
		measure = math.Max(2000, 200/m.R)
	}
	end := warmup + measure

	rng := rand.New(rand.NewSource(p.Seed))
	db := newState()
	var pending recoveryHeap
	res := Result{SimulatedSeconds: end}

	// Optional observability: lifetime bookkeeping mirrors the state
	// transitions (item gains its first tag = install, loses its last =
	// reduction).
	var (
		mTxns, mFailed, mPolyTxns, mPolySpread *metrics.Counter
		mPop                                   *metrics.Gauge
		mLife                                  *metrics.Histogram
		installAt                              map[int64]float64
	)
	if p.Metrics != nil {
		mTxns = p.Metrics.Counter("sim.txns")
		mFailed = p.Metrics.Counter("sim.failed")
		mPolyTxns = p.Metrics.Counter("sim.polytxns")
		mPolySpread = p.Metrics.Counter("sim.polyspread")
		mPop = p.Metrics.Gauge("sim.poly.population")
		mLife = p.Metrics.Histogram("sim.poly.lifetime.seconds")
		installAt = map[int64]float64{}
	}
	install := func(item int64, t float64) {
		if installAt == nil {
			return
		}
		installAt[item] = t
		mPop.Add(1)
	}
	reduce := func(item int64, t float64) {
		if installAt == nil {
			return
		}
		if at, ok := installAt[item]; ok {
			mLife.Observe(t - at)
			delete(installAt, item)
		}
		mPop.Add(-1)
	}

	nextTID := int64(1)
	// Optional initial burst: InitialPolyvalues distinct items, one
	// pending transaction each.
	for k := 0; k < p.InitialPolyvalues && k < int(m.I); k++ {
		tid := nextTID
		nextTID++
		db.setTags(int64(k), map[int64]bool{tid: true})
		install(int64(k), 0)
		heap.Push(&pending, recovery{at: rng.ExpFloat64() / m.R, tid: tid})
	}
	res.MaxPolyvalues = db.polyCount()

	now := 0.0
	nextArrival := rng.ExpFloat64() / m.U
	nextSample := 0.0
	sample := func(t float64) {
		if p.SampleEvery <= 0 {
			return
		}
		for nextSample <= t {
			res.Series = append(res.Series, PopSample{T: nextSample, P: db.polyCount()})
			nextSample += p.SampleEvery
		}
	}

	// Time-weighted integration of the polyvalue count over the window.
	area := 0.0
	lastT := warmup
	account := func(t float64) {
		if t > lastT {
			area += float64(db.polyCount()) * (t - lastT)
			lastT = t
		}
	}

	for now < end {
		// Next event: transaction arrival or failure recovery.
		if len(pending) > 0 && pending[0].at <= nextArrival {
			ev := heap.Pop(&pending).(recovery)
			now = ev.at
			if now > warmup {
				account(math.Min(now, end))
			}
			sample(math.Min(now, end))
			if now >= end {
				break
			}
			for _, item := range db.recover(ev.tid) {
				reduce(item, now)
			}
			continue
		}
		now = nextArrival
		nextArrival = now + rng.ExpFloat64()/m.U
		if now > warmup {
			account(math.Min(now, end))
		}
		sample(math.Min(now, end))
		if now >= end {
			break
		}

		// One transaction: one updated item, d dependency items.
		res.Transactions++
		if mTxns != nil {
			mTxns.Inc()
		}
		item := rng.Int63n(int64(m.I))
		d := int(math.Round(rng.ExpFloat64() * m.D))
		newTags := map[int64]bool{}
		for k := 0; k < d; k++ {
			dep := rng.Int63n(int64(m.I))
			for tid := range db.tags[dep] {
				newTags[tid] = true
			}
		}
		// Previous value included with probability 1−Y.
		if rng.Float64() >= m.Y {
			for tid := range db.tags[item] {
				newTags[tid] = true
			}
		}
		touchedPoly := len(newTags) > 0
		if touchedPoly {
			res.PolyTransactions++
			if mPolyTxns != nil {
				mPolyTxns.Inc()
			}
		}
		if rng.Float64() < m.F {
			// Failed: the update itself is in doubt.
			res.Failed++
			if mFailed != nil {
				mFailed.Inc()
			}
			tid := nextTID
			nextTID++
			newTags[tid] = true
			heap.Push(&pending, recovery{at: now + rng.ExpFloat64()/m.R, tid: tid})
		} else if touchedPoly {
			res.PolySpread++
			if mPolySpread != nil {
				mPolySpread.Inc()
			}
		}
		wasPoly := len(db.tags[item]) > 0
		db.setTags(item, newTags)
		isPoly := len(newTags) > 0
		switch {
		case !wasPoly && isPoly:
			install(item, now)
		case wasPoly && !isPoly:
			reduce(item, now)
		}
		if c := db.polyCount(); c > res.MaxPolyvalues {
			res.MaxPolyvalues = c
		}
	}
	account(end)
	res.MeanPolyvalues = area / measure
	res.FinalPolyvalues = db.polyCount()
	return res, nil
}

// String summarizes a result.
func (r Result) String() string {
	return fmt.Sprintf("meanP=%.2f maxP=%d txns=%d failed=%d polytxns=%d",
		r.MeanPolyvalues, r.MaxPolyvalues, r.Transactions, r.Failed, r.PolyTransactions)
}
