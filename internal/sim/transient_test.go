package sim

import (
	"math"
	"testing"

	"repro/internal/model"
)

// TestBurstDecayMatchesTransient validates the §4.1 stability claim
// against the simulator: seed a burst of P0 polyvalues far above the
// steady state and check the population decays along the model's
// transient P(t) = P∞ + (P0 − P∞)·e^(−λt).
func TestBurstDecayMatchesTransient(t *testing.T) {
	m := model.Params{U: 10, F: 0.01, I: 10000, R: 0.01, Y: 0, D: 1}
	const p0 = 500
	// Average several seeds to smooth stochastic wiggle.
	const seeds = 8
	horizon := 400.0
	step := 50.0
	sums := map[float64]float64{}
	for seed := int64(0); seed < seeds; seed++ {
		r, err := Run(Params{
			Model: m, Seed: seed,
			Warmup: 0.001, Measure: horizon,
			InitialPolyvalues: p0, SampleEvery: step,
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.MaxPolyvalues < p0 {
			t.Fatalf("burst not installed: max = %d", r.MaxPolyvalues)
		}
		for _, s := range r.Series {
			sums[s.T] += float64(s.P)
		}
	}
	for tm := step; tm <= horizon-step; tm += step {
		avg := sums[tm] / seeds
		want := m.Transient(p0, tm)
		if math.Abs(avg-want) > 0.25*p0*math.Exp(-m.Rate()*tm)+0.15*want+5 {
			t.Errorf("t=%.0f: population %.1f, transient predicts %.1f", tm, avg, want)
		}
	}
	// And it decays: later samples below earlier ones, heading to P∞.
	early := sums[step] / seeds
	late := sums[horizon-step] / seeds
	if late >= early {
		t.Errorf("burst did not decay: %.1f -> %.1f", early, late)
	}
	if late > 4*m.SteadyState() {
		t.Errorf("population %.1f far above steady state %.1f after %g s", late, m.SteadyState(), horizon)
	}
}

// TestPolytransactionRateMatchesModel: the observed rate of transactions
// touching polyvalued inputs tracks the model's U·D·P∞/I propagation
// term — the §4 quantity that justifies the polytransaction machinery's
// cost being negligible.
func TestPolytransactionRateMatchesModel(t *testing.T) {
	m := model.Params{U: 10, F: 0.01, I: 10000, R: 0.01, Y: 0, D: 2}
	r, err := Run(Params{Model: m, Seed: 4, Warmup: 2000, Measure: 40000})
	if err != nil {
		t.Fatal(err)
	}
	observed := float64(r.PolyTransactions) / r.SimulatedSeconds
	// The model term counts dependency touches only (U·D·P/I); the
	// simulator also counts previous-value touches (Y=0 adds ≈ U·P/I),
	// so compare against the sum.
	predicted := m.PolytransactionRate() + m.U*(1-m.Y)*m.SteadyState()/m.I
	if observed < predicted*0.5 || observed > predicted*1.6 {
		t.Errorf("polytransaction rate %.4f/s, model ≈ %.4f/s", observed, predicted)
	}
}

// TestSeriesSampling: the series covers the run at the requested
// cadence.
func TestSeriesSampling(t *testing.T) {
	m := model.Params{U: 10, F: 0.01, I: 10000, R: 0.01, Y: 0, D: 1}
	r, err := Run(Params{Model: m, Seed: 1, Warmup: 1, Measure: 99, SampleEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) < 9 || len(r.Series) > 12 {
		t.Errorf("series has %d samples", len(r.Series))
	}
	for i := 1; i < len(r.Series); i++ {
		if r.Series[i].T <= r.Series[i-1].T {
			t.Fatalf("series not increasing at %d", i)
		}
	}
}

// TestInitialPolyvaluesCappedByI: a burst larger than the database is
// clamped.
func TestInitialPolyvaluesCappedByI(t *testing.T) {
	m := model.Params{U: 1, F: 0.01, I: 10, R: 0.5, Y: 0, D: 0}
	r, err := Run(Params{Model: m, Seed: 1, Warmup: 1, Measure: 10, InitialPolyvalues: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxPolyvalues > 10 {
		t.Errorf("max = %d with I=10", r.MaxPolyvalues)
	}
}
