package sim

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/model"
)

// Table2Row is one row of the paper's Table 2: "Results of Simulating the
// Polyvalue Mechanism".
type Table2Row struct {
	Params model.Params
	// PaperPredicted is the printed "Predicted P" column.
	PaperPredicted float64
	// PaperActual is the printed "Actual P" column (the authors'
	// simulation).
	PaperActual float64
}

// Table2 returns the paper's six simulated parameter sets with the
// printed predicted and measured polyvalue counts.
func Table2() []Table2Row {
	return []Table2Row{
		{model.Params{U: 2, F: 0.01, I: 10000, R: 0.01, Y: 0, D: 1}, 2.04, 2.00},
		{model.Params{U: 5, F: 0.01, I: 10000, R: 0.01, Y: 0, D: 1}, 5.26, 2.71},
		{model.Params{U: 10, F: 0.01, I: 10000, R: 0.01, Y: 0, D: 1}, 11.11, 9.5},
		{model.Params{U: 10, F: 0.001, I: 10000, R: 0.01, Y: 0, D: 1}, 1.11, 0.74},
		{model.Params{U: 10, F: 0.01, I: 10000, R: 0.01, Y: 0, D: 5}, 20, 19.8},
		{model.Params{U: 10, F: 0.01, I: 10000, R: 0.01, Y: 1, D: 5}, 16.7, 15.8},
	}
}

// Table2Result pairs a row with this implementation's measured value.
type Table2Result struct {
	Row      Table2Row
	Measured Result
}

// RunTable2 executes every Table 2 row with the given seed and
// measurement window (0 = defaults).
func RunTable2(seed int64, warmup, measure float64) ([]Table2Result, error) {
	rows := Table2()
	out := make([]Table2Result, 0, len(rows))
	for i, row := range rows {
		r, err := Run(Params{Model: row.Params, Seed: seed + int64(i), Warmup: warmup, Measure: measure})
		if err != nil {
			return nil, fmt.Errorf("sim: table 2 row %d: %w", i, err)
		}
		out = append(out, Table2Result{Row: row, Measured: r})
	}
	return out, nil
}

// Table2Stats aggregates one row's measurement over several seeds.
type Table2Stats struct {
	Row Table2Row
	// Mean and StdErr summarize the per-seed MeanPolyvalues.
	Mean, StdErr float64
	Runs         int
}

// RunTable2Multi executes every Table 2 row `runs` times with distinct
// seeds and reports mean ± standard error, for confidence beyond a
// single draw.
func RunTable2Multi(runs int, baseSeed int64, warmup, measure float64) ([]Table2Stats, error) {
	if runs < 2 {
		return nil, fmt.Errorf("sim: need ≥ 2 runs for error bars, got %d", runs)
	}
	rows := Table2()
	out := make([]Table2Stats, 0, len(rows))
	for i, row := range rows {
		var sum, sumSq float64
		for r := 0; r < runs; r++ {
			res, err := Run(Params{
				Model:  row.Params,
				Seed:   baseSeed + int64(i*runs+r),
				Warmup: warmup, Measure: measure,
			})
			if err != nil {
				return nil, fmt.Errorf("sim: row %d run %d: %w", i, r, err)
			}
			sum += res.MeanPolyvalues
			sumSq += res.MeanPolyvalues * res.MeanPolyvalues
		}
		mean := sum / float64(runs)
		variance := (sumSq - sum*sum/float64(runs)) / float64(runs-1)
		if variance < 0 {
			variance = 0
		}
		out = append(out, Table2Stats{
			Row: row, Mean: mean,
			StdErr: math.Sqrt(variance / float64(runs)),
			Runs:   runs,
		})
	}
	return out, nil
}

// FormatTable2Multi renders the multi-seed comparison.
func FormatTable2Multi(stats []Table2Stats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-7s %-7s %-6s %-3s %-3s %-11s %-12s %-16s\n",
		"U", "F", "I", "R", "Y", "D", "predicted", "paper-actual", "measured (±se)")
	for _, s := range stats {
		p := s.Row.Params
		fmt.Fprintf(&b, "%-4g %-7g %-7g %-6g %-3g %-3g %-11.2f %-12.2f %.2f ± %.2f\n",
			p.U, p.F, p.I, p.R, p.Y, p.D,
			s.Row.PaperPredicted, s.Row.PaperActual, s.Mean, s.StdErr)
	}
	return b.String()
}

// FormatTable2 renders measured-vs-paper columns.
func FormatTable2(results []Table2Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-7s %-7s %-6s %-3s %-3s %-11s %-12s %-10s\n",
		"U", "F", "I", "R", "Y", "D", "predicted", "paper-actual", "measured")
	for _, res := range results {
		p := res.Row.Params
		fmt.Fprintf(&b, "%-4g %-7g %-7g %-6g %-3g %-3g %-11.2f %-12.2f %-10.2f\n",
			p.U, p.F, p.I, p.R, p.Y, p.D,
			res.Row.PaperPredicted, res.Row.PaperActual, res.Measured.MeanPolyvalues)
	}
	return b.String()
}
