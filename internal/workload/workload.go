// Package workload generates the transaction mixes used by the cluster
// benchmarks and the example applications: the §5 application domains
// (funds transfer, reservations, inventory control) expressed as expr
// programs over named items.
//
// Generators are deterministic for a seed.  Item selection supports a
// hot-set skew, reflecting the paper's observation that "some items may
// participate in transactions much more frequently than others[, which]
// has the effect of reducing the effective size of the database."
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/polyvalue"
	"repro/internal/value"
)

// Kind selects the application domain.
type Kind uint8

const (
	// Bank generates guarded transfers between account items.
	Bank Kind = iota
	// Reservations generates seat-grant increments against capacity.
	Reservations
	// Inventory generates stock withdrawals and occasional restocks.
	Inventory
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Bank:
		return "bank"
	case Reservations:
		return "reservations"
	case Inventory:
		return "inventory"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Config parameterizes a generator.
type Config struct {
	Kind Kind
	// Items is the number of distinct items (accounts, flights, SKUs).
	Items int
	// Seed drives all randomness.
	Seed int64
	// HotFraction, if positive, routes that fraction of picks to the
	// first HotItems items.
	HotFraction float64
	// HotItems is the size of the hot set (default max(1, Items/100)).
	HotItems int
	// Zipf, when > 1, draws item indices from a Zipf distribution with
	// parameter s = Zipf instead of the uniform/hot-set scheme — the
	// paper's "some items may participate in transactions much more
	// frequently than others" modelled with a standard heavy tail.
	// Mutually exclusive with HotFraction.
	Zipf float64
	// Capacity is the reservation capacity / restock level (default 100).
	Capacity int
}

// Generator produces transaction program sources.
type Generator struct {
	cfg  Config
	rng  *rand.Rand
	zipf *rand.Zipf
	n    int64
}

// New builds a generator.
func New(cfg Config) (*Generator, error) {
	if cfg.Items < 2 {
		return nil, fmt.Errorf("workload: need at least 2 items, got %d", cfg.Items)
	}
	if cfg.HotFraction < 0 || cfg.HotFraction > 1 {
		return nil, fmt.Errorf("workload: HotFraction must be in [0,1], got %g", cfg.HotFraction)
	}
	if cfg.Zipf != 0 && cfg.Zipf <= 1 {
		return nil, fmt.Errorf("workload: Zipf parameter must be > 1, got %g", cfg.Zipf)
	}
	if cfg.Zipf > 1 && cfg.HotFraction > 0 {
		return nil, fmt.Errorf("workload: Zipf and HotFraction are mutually exclusive")
	}
	if cfg.HotItems <= 0 {
		cfg.HotItems = cfg.Items / 100
		if cfg.HotItems < 1 {
			cfg.HotItems = 1
		}
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 100
	}
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	if cfg.Zipf > 1 {
		g.zipf = rand.NewZipf(g.rng, cfg.Zipf, 1, uint64(cfg.Items-1))
	}
	return g, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Generator {
	g, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// Item returns the name of the i-th item in this workload's namespace.
func (g *Generator) Item(i int) string {
	switch g.cfg.Kind {
	case Reservations:
		return fmt.Sprintf("flight%d", i)
	case Inventory:
		return fmt.Sprintf("sku%d", i)
	default:
		return fmt.Sprintf("acct%d", i)
	}
}

// pick selects an item index with the configured skew.
func (g *Generator) pick() int {
	if g.zipf != nil {
		return int(g.zipf.Uint64())
	}
	if g.cfg.HotFraction > 0 && g.rng.Float64() < g.cfg.HotFraction {
		return g.rng.Intn(g.cfg.HotItems)
	}
	return g.rng.Intn(g.cfg.Items)
}

// pickDistinct returns two different item indices.
func (g *Generator) pickDistinct() (int, int) {
	a := g.pick()
	b := g.pick()
	for b == a {
		b = g.rng.Intn(g.cfg.Items)
	}
	return a, b
}

// Next returns the next transaction's program source.
func (g *Generator) Next() string {
	g.n++
	switch g.cfg.Kind {
	case Reservations:
		f := g.Item(g.pick())
		return fmt.Sprintf("%s = %s + 1 if %s < %d", f, f, f, g.cfg.Capacity)
	case Inventory:
		s := g.Item(g.pick())
		if g.n%10 == 0 {
			// Periodic restock.
			return fmt.Sprintf("%s = %s + %d if %s < %d", s, s, g.cfg.Capacity, s, g.cfg.Capacity/5)
		}
		q := 1 + g.rng.Intn(5)
		return fmt.Sprintf("%s = %s - %d if %s >= %d", s, s, q, s, q)
	default:
		src, dst := g.pickDistinct()
		amt := 1 + g.rng.Intn(50)
		a, b := g.Item(src), g.Item(dst)
		return fmt.Sprintf("%s = %s - %d if %s >= %d; %s = %s + %d if %s >= %d",
			a, a, amt, a, amt, b, b, amt, a, amt)
	}
}

// Query returns a read-only query source appropriate to the domain
// (balance check, seats remaining, stock level).
func (g *Generator) Query() string {
	item := g.Item(g.pick())
	switch g.cfg.Kind {
	case Reservations:
		return fmt.Sprintf("%d - %s", g.cfg.Capacity, item)
	default:
		return item
	}
}

// InitialState returns the bootstrap values for every item: bank accounts
// start rich enough for most transfers, reservations start empty,
// inventory starts at capacity.
func (g *Generator) InitialState() map[string]polyvalue.Poly {
	out := make(map[string]polyvalue.Poly, g.cfg.Items)
	for i := 0; i < g.cfg.Items; i++ {
		var v int64
		switch g.cfg.Kind {
		case Reservations:
			v = 0
		case Inventory:
			v = int64(g.cfg.Capacity)
		default:
			v = 1000
		}
		out[g.Item(i)] = polyvalue.Simple(value.Int(v))
	}
	return out
}
