package workload

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/value"
)

func TestValidation(t *testing.T) {
	if _, err := New(Config{Kind: Bank, Items: 1}); err == nil {
		t.Error("too few items accepted")
	}
	if _, err := New(Config{Kind: Bank, Items: 10, HotFraction: 2}); err == nil {
		t.Error("bad HotFraction accepted")
	}
	if _, err := New(Config{Kind: Bank, Items: 10}); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestDeterministic(t *testing.T) {
	a := MustNew(Config{Kind: Bank, Items: 20, Seed: 5})
	b := MustNew(Config{Kind: Bank, Items: 20, Seed: 5})
	for i := 0; i < 50; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestAllKindsParseAndRun(t *testing.T) {
	for _, kind := range []Kind{Bank, Reservations, Inventory} {
		g := MustNew(Config{Kind: kind, Items: 10, Seed: 1})
		init := g.InitialState()
		if len(init) != 10 {
			t.Fatalf("%v: initial state has %d items", kind, len(init))
		}
		env := expr.MapEnv{}
		for name, p := range init {
			v, ok := p.IsCertain()
			if !ok {
				t.Fatalf("%v: initial %s uncertain", kind, name)
			}
			env[name] = v
		}
		for i := 0; i < 100; i++ {
			src := g.Next()
			prog, err := expr.Parse(src)
			if err != nil {
				t.Fatalf("%v txn %d: %q does not parse: %v", kind, i, src, err)
			}
			writes, err := prog.Eval(env)
			if err != nil {
				t.Fatalf("%v txn %d: %q does not run: %v", kind, i, src, err)
			}
			for k, v := range writes {
				env[k] = v
			}
			qn, err := expr.ParseExpr(g.Query())
			if err != nil {
				t.Fatalf("%v query: %v", kind, err)
			}
			if _, err := expr.EvalExpr(qn, env); err != nil {
				t.Fatalf("%v query eval: %v", kind, err)
			}
		}
	}
}

func TestBankConservation(t *testing.T) {
	// Transfers conserve total money: both legs share the same guard.
	g := MustNew(Config{Kind: Bank, Items: 5, Seed: 9})
	env := expr.MapEnv{}
	total := int64(0)
	for name, p := range g.InitialState() {
		v, _ := p.IsCertain()
		env[name] = v
		n, _ := value.AsInt(v)
		total += n
	}
	for i := 0; i < 500; i++ {
		prog := expr.MustParse(g.Next())
		writes, err := prog.Eval(env)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range writes {
			env[k] = v
		}
	}
	sum := int64(0)
	for i := 0; i < 5; i++ {
		n, _ := value.AsInt(env[g.Item(i)])
		sum += n
	}
	if sum != total {
		t.Errorf("money not conserved: %d -> %d", total, sum)
	}
}

func TestReservationsNeverExceedCapacity(t *testing.T) {
	g := MustNew(Config{Kind: Reservations, Items: 3, Seed: 2, Capacity: 5})
	env := expr.MapEnv{}
	for name, p := range g.InitialState() {
		v, _ := p.IsCertain()
		env[name] = v
	}
	for i := 0; i < 200; i++ {
		prog := expr.MustParse(g.Next())
		writes, _ := prog.Eval(env)
		for k, v := range writes {
			env[k] = v
		}
	}
	for i := 0; i < 3; i++ {
		n, _ := value.AsInt(env[g.Item(i)])
		if n > 5 {
			t.Errorf("flight %d overbooked: %d", i, n)
		}
	}
}

func TestInventoryNeverNegative(t *testing.T) {
	g := MustNew(Config{Kind: Inventory, Items: 4, Seed: 3, Capacity: 20})
	env := expr.MapEnv{}
	for name, p := range g.InitialState() {
		v, _ := p.IsCertain()
		env[name] = v
	}
	for i := 0; i < 300; i++ {
		prog := expr.MustParse(g.Next())
		writes, _ := prog.Eval(env)
		for k, v := range writes {
			env[k] = v
		}
	}
	for i := 0; i < 4; i++ {
		n, _ := value.AsInt(env[g.Item(i)])
		if n < 0 {
			t.Errorf("sku %d negative: %d", i, n)
		}
	}
}

func TestHotSkew(t *testing.T) {
	g := MustNew(Config{Kind: Reservations, Items: 100, Seed: 4, HotFraction: 0.9, HotItems: 2})
	hot := 0
	for i := 0; i < 1000; i++ {
		src := g.Next()
		if strings.Contains(src, "flight0 ") || strings.Contains(src, "flight1 ") {
			hot++
		}
	}
	if hot < 700 {
		t.Errorf("hot traffic = %d/1000, want skewed", hot)
	}
}

func TestZipfSkew(t *testing.T) {
	g := MustNew(Config{Kind: Reservations, Items: 100, Seed: 6, Zipf: 2.0})
	counts := map[int]int{}
	for i := 0; i < 2000; i++ {
		src := g.Next()
		// Extract the flight index from "flightN = flightN + 1 if ...".
		var n int
		if _, err := fmt.Sscanf(src, "flight%d ", &n); err != nil {
			t.Fatalf("unparseable %q: %v", src, err)
		}
		counts[n]++
	}
	// Zipf: item 0 dominates, and low indices outweigh the tail.
	if counts[0] < counts[50]*3 {
		t.Errorf("no Zipf skew: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	head := counts[0] + counts[1] + counts[2]
	if head < 600 {
		t.Errorf("head too light for s=2: %d/2000", head)
	}
}

func TestZipfValidation(t *testing.T) {
	if _, err := New(Config{Kind: Bank, Items: 10, Zipf: 0.5}); err == nil {
		t.Error("Zipf <= 1 accepted")
	}
	if _, err := New(Config{Kind: Bank, Items: 10, Zipf: 2, HotFraction: 0.5}); err == nil {
		t.Error("Zipf + HotFraction accepted")
	}
}

func TestKindStrings(t *testing.T) {
	if Bank.String() != "bank" || Reservations.String() != "reservations" ||
		Inventory.String() != "inventory" || Kind(9).String() != "kind(9)" {
		t.Error("Kind strings wrong")
	}
}

func TestItemNamespaces(t *testing.T) {
	if MustNew(Config{Kind: Bank, Items: 2}).Item(0) != "acct0" {
		t.Error("bank namespace")
	}
	if MustNew(Config{Kind: Reservations, Items: 2}).Item(1) != "flight1" {
		t.Error("reservations namespace")
	}
	if MustNew(Config{Kind: Inventory, Items: 2}).Item(0) != "sku0" {
		t.Error("inventory namespace")
	}
}
