// Package metrics provides the counters and histograms used by the
// cluster runtime and the benchmark harness: transaction latency
// distributions, polyvalue population gauges, and protocol counters.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count, safe for concurrent
// use.  The zero value is ready.
type Counter struct {
	n atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta (must be ≥ 0).
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("metrics: negative Counter.Add")
	}
	c.n.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Gauge is an instantaneous level (e.g. current polyvalue population).
// The zero value is ready.
type Gauge struct {
	v atomic.Int64
}

// Set stores the level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the level by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultReservoirCap bounds a histogram's retained samples unless
// overridden by NewHistogram or SetCap.  Count, Sum, Mean, Min and Max
// stay exact regardless; only quantiles become approximate (computed over
// a uniform reservoir) once more than cap samples have been observed.
const DefaultReservoirCap = 4096

// Histogram collects float64 samples and answers summary queries.  Memory
// is bounded: beyond its cap it keeps a uniform random reservoir
// (Vitter's Algorithm R with a deterministic generator, so equal
// observation sequences yield equal state).  Safe for concurrent use.
// The zero value is ready with the default cap.
type Histogram struct {
	mu      sync.Mutex
	cap     int
	count   int64
	sum     float64
	min     float64
	max     float64
	samples []float64
	sorted  bool
	rng     uint64
}

// NewHistogram returns a histogram retaining at most cap samples for
// quantile estimation (cap <= 0 selects DefaultReservoirCap).
func NewHistogram(cap int) *Histogram {
	if cap <= 0 {
		cap = DefaultReservoirCap
	}
	return &Histogram{cap: cap}
}

// SetCap changes the reservoir cap (n <= 0 selects the default).  If the
// histogram already retains more than n samples, the retained set is
// truncated; count/sum/mean/min/max are unaffected.
func (h *Histogram) SetCap(n int) {
	if n <= 0 {
		n = DefaultReservoirCap
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.cap = n
	if len(h.samples) > n {
		h.samples = h.samples[:n]
		h.sorted = false
	}
}

// next returns a deterministic pseudo-random index in [0, n).
func (h *Histogram) next(n int64) int64 {
	if h.rng == 0 {
		h.rng = 0x9E3779B97F4A7C15
	}
	h.rng ^= h.rng << 13
	h.rng ^= h.rng >> 7
	h.rng ^= h.rng << 17
	return int64(h.rng % uint64(n))
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.cap <= 0 {
		h.cap = DefaultReservoirCap
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if len(h.samples) < h.cap {
		h.samples = append(h.samples, v)
		h.sorted = false
		return
	}
	// Reservoir full: replace a random slot with probability cap/count,
	// keeping the retained set a uniform sample of everything observed.
	if j := h.next(h.count); j < int64(h.cap) {
		h.samples[j] = v
		h.sorted = false
	}
}

// Count returns the number of samples observed (exact, not the retained
// reservoir size).
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return int(h.count)
}

// Retained returns how many samples the reservoir currently holds.
func (h *Histogram) Retained() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Sum returns the exact sum of all observed samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the exact sample mean (0 with no samples).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by nearest-rank over the
// retained reservoir (exact while fewer than cap samples have been
// observed); 0 with no samples.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	q = math.Max(0, math.Min(1, q))
	idx := int(math.Ceil(q*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return h.samples[idx]
}

// Min returns the smallest sample ever observed (0 with no samples).
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest sample ever observed (0 with no samples).
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Summary renders count/mean/p50/p99 on one line.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%.3f p50=%.3f p99=%.3f max=%.3f",
		h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
}

// Reset discards all samples (the cap is retained).
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = h.samples[:0]
	h.sorted = false
	h.count = 0
	h.sum = 0
	h.min = 0
	h.max = 0
}
