// Package metrics provides the counters and histograms used by the
// cluster runtime and the benchmark harness: transaction latency
// distributions, polyvalue population gauges, and protocol counters.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count, safe for concurrent
// use.  The zero value is ready.
type Counter struct {
	n atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta (must be ≥ 0).
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("metrics: negative Counter.Add")
	}
	c.n.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Gauge is an instantaneous level (e.g. current polyvalue population).
// The zero value is ready.
type Gauge struct {
	v atomic.Int64
}

// Set stores the level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the level by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultReservoirCap bounds a histogram's retained samples unless
// overridden by NewHistogram or SetCap.  Count, Sum, Mean, Min and Max
// stay exact regardless; only quantiles become approximate (computed over
// a uniform reservoir) once more than cap samples have been observed.
const DefaultReservoirCap = 4096

// Histogram collects float64 samples and answers summary queries.  Memory
// is bounded: beyond its cap it keeps a uniform random reservoir
// (Vitter's Algorithm R with a deterministic generator, so equal
// observation sequences yield equal state).  Safe for concurrent use.
// The zero value is ready with the default cap.
//
// By default all observers share one mutex — exact, deterministic, and
// fine for a single-threaded observer.  Stripe(n) spreads Observe
// across n independently locked child reservoirs so concurrent hot-path
// observers (execution lanes, multiple in-process nodes sharing a
// registry) stop serializing on the histogram lock; readers merge the
// stripes.  Unstriped histograms keep the exact legacy behavior,
// including reservoir state, so seeded simulated runs are unaffected.
type Histogram struct {
	mu      sync.Mutex
	cap     int
	count   int64
	sum     float64
	min     float64
	max     float64
	samples []float64
	sorted  bool
	rng     uint64

	// stripes, when non-nil, receives every Observe after Stripe was
	// called; the fields above then hold only pre-stripe history and
	// readers merge both.  Child histograms never stripe themselves.
	stripes atomic.Pointer[[]*Histogram]
	// rr round-robins observers across stripes.
	rr atomic.Uint64
}

// NewHistogram returns a histogram retaining at most cap samples for
// quantile estimation (cap <= 0 selects DefaultReservoirCap).
func NewHistogram(cap int) *Histogram {
	if cap <= 0 {
		cap = DefaultReservoirCap
	}
	return &Histogram{cap: cap}
}

// Stripe splits the histogram into n independently locked reservoirs
// for concurrent observers.  Idempotent: once striped, later calls are
// no-ops (several in-process nodes sharing one registry may each ask).
// n <= 1 is a no-op.  Samples observed before striping are retained and
// merged into every read.
func (h *Histogram) Stripe(n int) {
	if n <= 1 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.stripes.Load() != nil {
		return
	}
	if h.cap <= 0 {
		h.cap = DefaultReservoirCap
	}
	per := h.cap / n
	if per < 16 {
		per = 16
	}
	kids := make([]*Histogram, n)
	for i := range kids {
		kids[i] = &Histogram{
			cap: per,
			// Decorrelate the stripes' reservoir generators.
			rng: 0x9E3779B97F4A7C15 + uint64(i)*0xBF58476D1CE4E5B9,
		}
	}
	h.stripes.Store(&kids)
}

// SetCap changes the reservoir cap (n <= 0 selects the default).  If the
// histogram already retains more than n samples, the retained set is
// truncated; count/sum/mean/min/max are unaffected.  On a striped
// histogram the cap is divided across stripes.
func (h *Histogram) SetCap(n int) {
	if n <= 0 {
		n = DefaultReservoirCap
	}
	if s := h.stripeList(); s != nil {
		per := n / len(s)
		if per < 16 {
			per = 16
		}
		for _, st := range s {
			st.SetCap(per)
		}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.cap = n
	if len(h.samples) > n {
		h.samples = h.samples[:n]
		h.sorted = false
	}
}

func (h *Histogram) stripeList() []*Histogram {
	if p := h.stripes.Load(); p != nil {
		return *p
	}
	return nil
}

// next returns a deterministic pseudo-random index in [0, n).
func (h *Histogram) next(n int64) int64 {
	if h.rng == 0 {
		h.rng = 0x9E3779B97F4A7C15
	}
	h.rng ^= h.rng << 13
	h.rng ^= h.rng >> 7
	h.rng ^= h.rng << 17
	return int64(h.rng % uint64(n))
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if s := h.stripeList(); s != nil {
		// Striped hot path: prefer any uncontended stripe, fall back to
		// blocking on the round-robin pick.
		i := int(h.rr.Add(1))
		n := len(s)
		for j := 0; j < n; j++ {
			st := s[(i+j)%n]
			if st.mu.TryLock() {
				st.observeLocked(v)
				st.mu.Unlock()
				return
			}
		}
		st := s[i%n]
		st.mu.Lock()
		st.observeLocked(v)
		st.mu.Unlock()
		return
	}
	h.mu.Lock()
	h.observeLocked(v)
	h.mu.Unlock()
}

func (h *Histogram) observeLocked(v float64) {
	if h.cap <= 0 {
		h.cap = DefaultReservoirCap
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if len(h.samples) < h.cap {
		h.samples = append(h.samples, v)
		h.sorted = false
		return
	}
	// Reservoir full: replace a random slot with probability cap/count,
	// keeping the retained set a uniform sample of everything observed.
	if j := h.next(h.count); j < int64(h.cap) {
		h.samples[j] = v
		h.sorted = false
	}
}

// Count returns the number of samples observed (exact, not the retained
// reservoir size).
func (h *Histogram) Count() int {
	h.mu.Lock()
	n := h.count
	h.mu.Unlock()
	for _, st := range h.stripeList() {
		st.mu.Lock()
		n += st.count
		st.mu.Unlock()
	}
	return int(n)
}

// Retained returns how many samples the reservoir currently holds.
func (h *Histogram) Retained() int {
	h.mu.Lock()
	n := len(h.samples)
	h.mu.Unlock()
	for _, st := range h.stripeList() {
		st.mu.Lock()
		n += len(st.samples)
		st.mu.Unlock()
	}
	return n
}

// Sum returns the exact sum of all observed samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	s := h.sum
	h.mu.Unlock()
	for _, st := range h.stripeList() {
		st.mu.Lock()
		s += st.sum
		st.mu.Unlock()
	}
	return s
}

// Mean returns the exact sample mean (0 with no samples).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by nearest-rank over the
// retained reservoir (exact while fewer than cap samples have been
// observed); 0 with no samples.
func (h *Histogram) Quantile(q float64) float64 {
	if s := h.stripeList(); s != nil {
		// Merge a copy of every reservoir; stripes are locked one at a
		// time, so the view is only instantaneously consistent — fine
		// for a metrics read.
		var merged []float64
		h.mu.Lock()
		merged = append(merged, h.samples...)
		h.mu.Unlock()
		for _, st := range s {
			st.mu.Lock()
			merged = append(merged, st.samples...)
			st.mu.Unlock()
		}
		if len(merged) == 0 {
			return 0
		}
		sort.Float64s(merged)
		q = math.Max(0, math.Min(1, q))
		idx := int(math.Ceil(q*float64(len(merged)))) - 1
		if idx < 0 {
			idx = 0
		}
		return merged[idx]
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	q = math.Max(0, math.Min(1, q))
	idx := int(math.Ceil(q*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return h.samples[idx]
}

// Min returns the smallest sample ever observed (0 with no samples).
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	m := h.min
	seen := h.count > 0
	h.mu.Unlock()
	for _, st := range h.stripeList() {
		st.mu.Lock()
		if st.count > 0 && (!seen || st.min < m) {
			m = st.min
			seen = true
		}
		st.mu.Unlock()
	}
	if !seen {
		return 0
	}
	return m
}

// Max returns the largest sample ever observed (0 with no samples).
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	m := h.max
	seen := h.count > 0
	h.mu.Unlock()
	for _, st := range h.stripeList() {
		st.mu.Lock()
		if st.count > 0 && (!seen || st.max > m) {
			m = st.max
			seen = true
		}
		st.mu.Unlock()
	}
	if !seen {
		return 0
	}
	return m
}

// Summary renders count/mean/p50/p99 on one line.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%.3f p50=%.3f p99=%.3f max=%.3f",
		h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
}

// Reset discards all samples (the cap and striping are retained).
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.samples = h.samples[:0]
	h.sorted = false
	h.count = 0
	h.sum = 0
	h.min = 0
	h.max = 0
	h.mu.Unlock()
	for _, st := range h.stripeList() {
		st.Reset()
	}
}
