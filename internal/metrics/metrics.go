// Package metrics provides the counters and histograms used by the
// cluster runtime and the benchmark harness: transaction latency
// distributions, polyvalue population gauges, and protocol counters.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count, safe for concurrent
// use.  The zero value is ready.
type Counter struct {
	n atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta (must be ≥ 0).
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("metrics: negative Counter.Add")
	}
	c.n.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Gauge is an instantaneous level (e.g. current polyvalue population).
// The zero value is ready.
type Gauge struct {
	v atomic.Int64
}

// Set stores the level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the level by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram collects float64 samples and answers summary queries.  It
// retains all samples (workloads here are bounded); safe for concurrent
// use.  The zero value is ready.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	sorted  bool
	sum     float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = append(h.samples, v)
	h.sorted = false
	h.sum += v
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Mean returns the sample mean (0 with no samples).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / float64(len(h.samples))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by nearest-rank; 0 with no
// samples.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	q = math.Max(0, math.Min(1, q))
	idx := int(math.Ceil(q*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return h.samples[idx]
}

// Min returns the smallest sample (0 with no samples).
func (h *Histogram) Min() float64 { return h.Quantile(0) }

// Max returns the largest sample (0 with no samples).
func (h *Histogram) Max() float64 { return h.Quantile(1) }

// Summary renders count/mean/p50/p99 on one line.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%.3f p50=%.3f p99=%.3f max=%.3f",
		h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = h.samples[:0]
	h.sorted = false
	h.sum = 0
}
