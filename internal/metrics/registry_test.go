package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryIdempotentLookup(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x", L("site", "A"))
	b := r.Counter("x", L("site", "A"))
	if a != b {
		t.Error("same name+labels should return the same counter")
	}
	if r.Counter("x", L("site", "B")) == a {
		t.Error("different labels should return a different counter")
	}
	if r.Counter("y") == a {
		t.Error("different name should return a different counter")
	}
}

func TestRegistryLabelOrderIrrelevant(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x", L("a", "1"), L("b", "2"))
	b := r.Counter("x", L("b", "2"), L("a", "1"))
	if a != b {
		t.Error("label order must not distinguish series")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on kind mismatch")
		}
	}()
	r.Gauge("x")
}

func TestRegistryEmptyNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on empty series name")
		}
	}()
	r.Counter("")
}

func TestRegistryDuplicateLabelKeyPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate label key")
		}
	}()
	r.Counter("x", L("a", "1"), L("a", "2"))
}

// TestRegistryConcurrent hammers registration and updates from many
// goroutines; run under -race this is the registry's thread-safety test.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers, perWorker = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("shared").Inc()
				r.Gauge("gauge", L("w", string(rune('a'+w)))).Set(int64(i))
				r.Histogram("hist").Observe(float64(i))
				_ = r.Snapshot()
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*perWorker {
		t.Errorf("shared counter = %d, want %d", got, workers*perWorker)
	}
	if p, ok := r.Snapshot().Get("hist"); !ok || p.Count != workers*perWorker {
		t.Errorf("hist count = %d, want %d", p.Count, workers*perWorker)
	}
}

// TestSnapshotDeterminism: registration order must not affect the
// exported text.
func TestSnapshotDeterminism(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	fill := func(r *Registry, rev bool) {
		names := []string{"alpha", "beta", "gamma"}
		if rev {
			names = []string{"gamma", "beta", "alpha"}
		}
		for _, n := range names {
			r.Counter(n, L("site", "A")).Add(7)
			r.Counter(n, L("site", "B")).Add(3)
		}
		r.Histogram("h").Observe(1.5)
		r.Gauge("g").Set(-2)
	}
	fill(a, false)
	fill(b, true)
	if a.Export() != b.Export() {
		t.Errorf("exports differ:\n%s\nvs\n%s", a.Export(), b.Export())
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	c.Add(10)
	g.Set(5)
	h.Observe(2)
	earlier := r.Snapshot()
	c.Add(4)
	g.Set(-1)
	h.Observe(6)
	h.Observe(6)
	r.Counter("new").Inc() // absent from earlier: passes through
	d := r.Snapshot().Diff(earlier)

	if got := d.Counter("c"); got != 4 {
		t.Errorf("counter delta = %d, want 4", got)
	}
	if got := d.Counter("g"); got != -1 {
		t.Errorf("gauge diff should keep later value, got %d", got)
	}
	if got := d.Counter("new"); got != 1 {
		t.Errorf("new counter should pass through, got %d", got)
	}
	p, ok := d.Get("h")
	if !ok || p.Count != 2 || p.Sum != 12 {
		t.Errorf("histogram window = count %d sum %g, want 2 / 12", p.Count, p.Sum)
	}
}

// TestExportGolden pins the exact text format: sorted series, canonical
// label rendering, histogram suffix lines and quantile labels.
func TestExportGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("txn.committed").Add(3)
	r.Counter("network.sent", L("type", "prepare")).Add(12)
	r.Gauge("poly.population").Set(2)
	h := r.Histogram("lat.seconds", L("site", "A"))
	h.Observe(0.25)
	h.Observe(0.75)
	want := strings.Join([]string{
		`lat.seconds_count{site="A"} 2`,
		`lat.seconds_sum{site="A"} 1`,
		`lat.seconds_min{site="A"} 0.25`,
		`lat.seconds_max{site="A"} 0.75`,
		`lat.seconds{quantile="0.5",site="A"} 0.25`,
		`lat.seconds{quantile="0.9",site="A"} 0.75`,
		`lat.seconds{quantile="0.99",site="A"} 0.75`,
		`network.sent{type="prepare"} 12`,
		`poly.population 2`,
		`txn.committed 3`,
	}, "\n") + "\n"
	if got := r.Export(); got != want {
		t.Errorf("export mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestSnapshotGetMissing(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.Snapshot().Get("nope"); ok {
		t.Error("Get of unregistered series should report absence")
	}
	if v := r.Snapshot().Counter("nope"); v != 0 {
		t.Errorf("Counter of unregistered series = %d, want 0", v)
	}
}

// TestHistogramReservoirBounded: far more observations than the cap keeps
// exact count/sum/extremes while bounding retained samples.
func TestHistogramReservoirBounded(t *testing.T) {
	h := NewHistogram(100)
	const n = 10000
	var sum float64
	for i := 0; i < n; i++ {
		h.Observe(float64(i))
		sum += float64(i)
	}
	if h.Count() != n {
		t.Errorf("Count = %d, want %d (must stay exact past the cap)", h.Count(), n)
	}
	if h.Retained() != 100 {
		t.Errorf("Retained = %d, want 100", h.Retained())
	}
	if h.Sum() != sum {
		t.Errorf("Sum = %g, want %g", h.Sum(), sum)
	}
	if h.Min() != 0 || h.Max() != n-1 {
		t.Errorf("Min/Max = %g/%g, want 0/%d", h.Min(), h.Max(), n-1)
	}
	// The reservoir is a uniform sample: the median estimate should land
	// in the middle half of the range.
	if q := h.Quantile(0.5); q < n/4 || q > 3*n/4 {
		t.Errorf("reservoir median %g implausibly far from %d", q, n/2)
	}
}

func TestRegistrySetHistogramCap(t *testing.T) {
	r := NewRegistry()
	r.SetHistogramCap(10)
	h := r.Histogram("h")
	for i := 0; i < 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d, want 100", h.Count())
	}
	if h.Retained() > 10 {
		t.Errorf("Retained = %d, want <= 10", h.Retained())
	}
}
