package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Value = %d", c.Value())
	}
	defer func() {
		if recover() == nil {
			t.Error("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("Value = %d", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("Value = %d", g.Value())
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Mean() != 50.5 {
		t.Errorf("Mean = %g", h.Mean())
	}
	if h.Quantile(0.5) != 50 {
		t.Errorf("p50 = %g", h.Quantile(0.5))
	}
	if h.Quantile(0.99) != 99 {
		t.Errorf("p99 = %g", h.Quantile(0.99))
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Errorf("min/max = %g/%g", h.Min(), h.Max())
	}
	// Out-of-range quantiles clamp.
	if h.Quantile(-1) != 1 || h.Quantile(2) != 100 {
		t.Error("quantile clamping wrong")
	}
	if !strings.Contains(h.Summary(), "n=100") {
		t.Errorf("Summary = %q", h.Summary())
	}
}

func TestHistogramObserveAfterQuantile(t *testing.T) {
	var h Histogram
	h.Observe(5)
	_ = h.Quantile(0.5) // sorts
	h.Observe(1)        // must re-sort on next query
	if h.Min() != 1 {
		t.Errorf("Min = %g", h.Min())
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Observe(5)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(float64(j))
				_ = h.Mean()
			}
		}()
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Errorf("Count = %d", h.Count())
	}
}
