package metrics

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one name=value dimension of a metric series (e.g. site="A",
// phase="wait").
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind distinguishes the three series types a Registry holds.
type Kind uint8

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota + 1
	// KindGauge is an instantaneous level.
	KindGauge
	// KindHistogram is a sample distribution.
	KindHistogram
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// series is one registered (name, labels) instrument.
type series struct {
	name   string
	labels []Label // sorted by key
	kind   Kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds named metric series registered by dotted name plus
// labels.  Registration is idempotent: asking for the same (name, labels)
// returns the same instrument, so hot paths may re-look-up rather than
// cache.  Safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	series  map[string]*series
	histCap int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: map[string]*series{}}
}

// SetHistogramCap sets the reservoir cap applied to histograms created by
// this registry after the call (0 = package default).
func (r *Registry) SetHistogramCap(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.histCap = n
}

// seriesKey canonicalizes a (name, labels) pair: labels sorted by key,
// rendered name{k="v",...}.  This is also the exporter's line prefix.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(l.Value)
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// normalize validates the name and returns a sorted copy of labels.
func normalize(name string, labels []Label) []Label {
	if name == "" {
		panic("metrics: empty series name")
	}
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	for i, l := range out {
		if l.Key == "" {
			panic("metrics: empty label key on series " + name)
		}
		if i > 0 && out[i-1].Key == l.Key {
			panic("metrics: duplicate label key " + l.Key + " on series " + name)
		}
	}
	return out
}

// lookup finds or creates a series, enforcing kind consistency.
func (r *Registry) lookup(name string, labels []Label, kind Kind) *series {
	labels = normalize(name, labels)
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[key]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("metrics: series %s already registered as %s, requested as %s", key, s.kind, kind))
		}
		return s
	}
	s := &series{name: name, labels: labels, kind: kind}
	switch kind {
	case KindCounter:
		s.counter = &Counter{}
	case KindGauge:
		s.gauge = &Gauge{}
	case KindHistogram:
		s.hist = NewHistogram(r.histCap)
	}
	r.series[key] = s
	return s
}

// Counter finds or registers the named counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.lookup(name, labels, KindCounter).counter
}

// Gauge finds or registers the named gauge.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.lookup(name, labels, KindGauge).gauge
}

// Histogram finds or registers the named histogram.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	return r.lookup(name, labels, KindHistogram).hist
}

// Point is one series' state at snapshot time.  Counter and gauge series
// fill Value; histogram series fill Count/Sum/Min/Max and the fixed
// quantiles.
type Point struct {
	Name   string
	Labels []Label
	Kind   Kind

	// Value is the counter or gauge reading.
	Value int64

	// Count and Sum are exact over all observations (reservoir sampling
	// never loses them); Min/Max are the exact extremes.
	Count    int64
	Sum      float64
	Min, Max float64
	// P50/P90/P99 are nearest-rank quantiles over the retained reservoir
	// (exact below the histogram's cap).
	P50, P90, P99 float64
}

// Key returns the canonical series identity (name plus sorted labels).
func (p Point) Key() string { return seriesKey(p.Name, p.Labels) }

// Mean returns Sum/Count (0 with no observations).
func (p Point) Mean() float64 {
	if p.Count == 0 {
		return 0
	}
	return p.Sum / float64(p.Count)
}

// Snapshot is a consistent, deterministic reading of every series in a
// registry: points are sorted by series key, so two snapshots of
// identical state render identically.
type Snapshot struct {
	Points []Point
}

// Snapshot reads every registered series.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	keys := make([]string, 0, len(r.series))
	for k := range r.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	list := make([]*series, len(keys))
	for i, k := range keys {
		list[i] = r.series[k]
	}
	r.mu.Unlock()

	snap := Snapshot{Points: make([]Point, 0, len(list))}
	for _, s := range list {
		p := Point{Name: s.name, Labels: append([]Label{}, s.labels...), Kind: s.kind}
		switch s.kind {
		case KindCounter:
			p.Value = s.counter.Value()
		case KindGauge:
			p.Value = s.gauge.Value()
		case KindHistogram:
			h := s.hist
			p.Count = int64(h.Count())
			p.Sum = h.Sum()
			p.Min = h.Min()
			p.Max = h.Max()
			p.P50 = h.Quantile(0.5)
			p.P90 = h.Quantile(0.9)
			p.P99 = h.Quantile(0.99)
		}
		snap.Points = append(snap.Points, p)
	}
	return snap
}

// Get finds a point by name and labels.
func (s Snapshot) Get(name string, labels ...Label) (Point, bool) {
	key := seriesKey(name, normalize(name, labels))
	for _, p := range s.Points {
		if p.Key() == key {
			return p, true
		}
	}
	return Point{}, false
}

// Counter returns a counter/gauge point's value (0 when absent).
func (s Snapshot) Counter(name string, labels ...Label) int64 {
	p, _ := s.Get(name, labels...)
	return p.Value
}

// Diff returns the change from earlier to s: counter values and histogram
// count/sum become window deltas; gauges keep their later reading; the
// histogram extremes and quantiles are copied from s (they are cumulative
// and cannot be subtracted).  Series absent from earlier pass through
// unchanged; series absent from s are dropped.
func (s Snapshot) Diff(earlier Snapshot) Snapshot {
	prev := make(map[string]Point, len(earlier.Points))
	for _, p := range earlier.Points {
		prev[p.Key()] = p
	}
	out := Snapshot{Points: make([]Point, 0, len(s.Points))}
	for _, p := range s.Points {
		if q, ok := prev[p.Key()]; ok && q.Kind == p.Kind {
			switch p.Kind {
			case KindCounter:
				p.Value -= q.Value
			case KindHistogram:
				p.Count -= q.Count
				p.Sum -= q.Sum
			}
		}
		out.Points = append(out.Points, p)
	}
	return out
}

// fmtFloat renders a float deterministically and compactly.
func fmtFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// Export renders the snapshot as deterministic Prometheus-style text
// lines, sorted by series key.  Counters and gauges emit one line;
// histograms emit _count/_sum/_min/_max lines plus quantile-labelled
// lines.
func (s Snapshot) Export() string {
	var b strings.Builder
	for _, p := range s.Points {
		switch p.Kind {
		case KindCounter, KindGauge:
			b.WriteString(p.Key())
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(p.Value, 10))
			b.WriteByte('\n')
		case KindHistogram:
			suffix := func(sfx string, v string) {
				b.WriteString(seriesKey(p.Name+sfx, p.Labels))
				b.WriteByte(' ')
				b.WriteString(v)
				b.WriteByte('\n')
			}
			suffix("_count", strconv.FormatInt(p.Count, 10))
			suffix("_sum", fmtFloat(p.Sum))
			suffix("_min", fmtFloat(p.Min))
			suffix("_max", fmtFloat(p.Max))
			for _, q := range []struct {
				q string
				v float64
			}{{"0.5", p.P50}, {"0.9", p.P90}, {"0.99", p.P99}} {
				quant := append(append([]Label{}, p.Labels...), L("quantile", q.q))
				sort.Slice(quant, func(i, j int) bool { return quant[i].Key < quant[j].Key })
				b.WriteString(seriesKey(p.Name, quant))
				b.WriteByte(' ')
				b.WriteString(fmtFloat(q.v))
				b.WriteByte('\n')
			}
		}
	}
	return b.String()
}

// String renders the snapshot (same as Export).
func (s Snapshot) String() string { return s.Export() }

// Export snapshots the registry and renders it in one step.
func (r *Registry) Export() string { return r.Snapshot().Export() }
