package polyvalues

// The benchmark harness regenerates every table and figure in the
// paper's evaluation (§4), plus the ablations called out in DESIGN.md:
//
//	BenchmarkTable1Model              — Table 1 (model predictions)
//	BenchmarkTable2Simulation         — Table 2 (simulated vs predicted)
//	BenchmarkFigure1Protocol          — Figure 1 (update-protocol states)
//	BenchmarkAblationBlockingVsPolyvalue — A1 (availability under failure)
//	BenchmarkAblationPolytxnFanout    — A2 (polytransaction compute cost)
//
// Reported custom metrics carry the reproduced numbers; `go test
// -bench=. -benchmem` prints them, and cmd/polytables renders the same
// tables for human reading.

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/condition"
	"repro/internal/harness"
	"repro/internal/polytxn"
	"repro/internal/polyvalue"
	"repro/internal/protocol"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/wire"
)

// BenchmarkTable1Model regenerates Table 1: steady-state polyvalue
// predictions for the paper's 11 parameter rows.  The metric
// max_rel_err_vs_paper is the largest relative deviation from the
// printed values (expected ≈ 0: the table is closed-form arithmetic).
func BenchmarkTable1Model(b *testing.B) {
	rows := Table1()
	var maxErr float64
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, row := range rows {
			p := row.Params.SteadyState()
			sink += p
			if e := math.Abs(p-row.PaperP) / row.PaperP; e > maxErr {
				maxErr = e
			}
		}
	}
	b.ReportMetric(maxErr, "max_rel_err_vs_paper")
	b.ReportMetric(float64(len(rows)), "rows")
	_ = sink
}

// BenchmarkTable2Simulation regenerates Table 2: the §4.2 discrete-event
// simulation for the paper's 6 parameter rows.  Metrics report the mean
// measured/predicted ratio (paper: measured tracks prediction from at or
// below) and the worst ratio.
func BenchmarkTable2Simulation(b *testing.B) {
	var meanRatio, worstHigh float64
	runs := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := RunTable2(int64(1000+i), 1500, 15000)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, r := range results {
			ratio := r.Measured.MeanPolyvalues / r.Row.PaperPredicted
			sum += ratio
			if ratio > worstHigh {
				worstHigh = ratio
			}
		}
		meanRatio += sum / float64(len(results))
		runs++
	}
	b.ReportMetric(meanRatio/float64(runs), "measured_over_predicted")
	b.ReportMetric(worstHigh, "worst_ratio")
}

// BenchmarkFigure1Protocol regenerates Figure 1 by driving every edge of
// the participant state machine (idle→compute→wait with complete, abort
// and timeout exits) once per iteration, confirming action/state pairs.
func BenchmarkFigure1Protocol(b *testing.B) {
	transitions := Figure1Transitions()
	b.ReportMetric(float64(len(transitions)), "edges")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tr := range transitions {
			p := protocol.NewParticipant("T1", "c")
			switch tr.From {
			case protocol.StateCompute:
				mustStep(b, p, protocol.EvPrepare)
			case protocol.StateWait:
				mustStep(b, p, protocol.EvPrepare)
				mustStep(b, p, protocol.EvComputed)
			}
			act, err := p.Transition(tr.Event)
			if err != nil || act != tr.Action || p.State() != tr.To {
				b.Fatalf("edge %v --%v--> broken: %v %v", tr.From, tr.Event, act, err)
			}
		}
	}
}

func mustStep(b *testing.B, p *protocol.Participant, ev protocol.PEvent) {
	b.Helper()
	if _, err := p.Transition(ev); err != nil {
		b.Fatal(err)
	}
}

// ablationCluster runs the A1 scenario under one policy: a coordinator
// crashes at the critical moment of a cross-site transfer, then K
// follow-up transactions target the affected items while the failure is
// outstanding.  Returns the fraction of follow-ups that committed.
func ablationCluster(b *testing.B, policy Policy, followUps int) float64 {
	c, err := NewCluster(ClusterConfig{
		Sites:  []SiteID{"A", "B", "C"},
		Net:    NetConfig{Latency: 10 * time.Millisecond},
		Policy: policy,
		Placement: func(item string) SiteID {
			switch item[0] {
			case 'a':
				return "A"
			case 'b':
				return "B"
			default:
				return "C"
			}
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.Load("bsrc", Simple(Int(100000))); err != nil {
		b.Fatal(err)
	}
	if err := c.Load("cdst", Simple(Int(0))); err != nil {
		b.Fatal(err)
	}
	c.ArmCrashBeforeDecision("A")
	if _, err := c.Submit("A", "bsrc = bsrc - 40; cdst = cdst + 40"); err != nil {
		b.Fatal(err)
	}
	c.RunFor(2 * time.Second)

	committed := 0
	for i := 0; i < followUps; i++ {
		h, err := c.Submit("B", "bsrc = bsrc - 1")
		if err != nil {
			b.Fatal(err)
		}
		c.RunFor(2 * time.Second)
		if h.Status() == StatusCommitted {
			committed++
		}
	}
	return float64(committed) / float64(followUps)
}

// BenchmarkAblationBlockingVsPolyvalue measures the availability win of
// polyvalues over blocking 2PC while a coordinator failure leaves
// participants in doubt: the fraction of follow-up transactions on the
// affected items that commit promptly (paper's core claim: 1.0 for
// polyvalues, 0.0 for blocking).
func BenchmarkAblationBlockingVsPolyvalue(b *testing.B) {
	const followUps = 5
	var polyFrac, blockFrac float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		polyFrac = ablationCluster(b, PolicyPolyvalue, followUps)
		blockFrac = ablationCluster(b, PolicyBlocking, followUps)
	}
	b.ReportMetric(polyFrac, "polyvalue_commit_frac")
	b.ReportMetric(blockFrac, "blocking_commit_frac")
	if polyFrac <= blockFrac {
		b.Fatalf("polyvalue availability %g not above blocking %g", polyFrac, blockFrac)
	}
}

// BenchmarkAblationPolytxnFanout measures §3.2's compute cost as the
// number of independently-uncertain inputs grows (alternatives double
// per input) — the cost DESIGN.md's A2 ablation quantifies and the
// paper's §4 analysis argues stays small because polyvalue populations
// stay small.
func BenchmarkAblationPolytxnFanout(b *testing.B) {
	for _, uncertain := range []int{0, 1, 2, 4, 8} {
		b.Run(fmt.Sprintf("uncertain=%d", uncertain), func(b *testing.B) {
			store := map[string]Poly{}
			src := "out = 0"
			for i := 0; i < 8; i++ {
				name := fmt.Sprintf("in%d", i)
				if i < uncertain {
					store[name] = Uncertain(TID(fmt.Sprintf("T%d", i)),
						Simple(Int(int64(i+1))), Simple(Int(0)))
				} else {
					store[name] = Simple(Int(int64(i + 1)))
				}
				src += " + " + name
			}
			tx := MustTxn("TX", "out = "+src[len("out = 0 + "):])
			ex := &Executor{}
			lookup := func(item string) Poly {
				if p, ok := store[item]; ok {
					return p
				}
				return Simple(Nil{})
			}
			b.ResetTimer()
			var alts int
			for i := 0; i < b.N; i++ {
				res, err := ex.Execute(tx, lookup)
				if err != nil {
					b.Fatal(err)
				}
				alts = res.Alternatives
			}
			b.ReportMetric(float64(alts), "alternatives")
		})
	}
}

// BenchmarkAblationRelaxedConsistency contrasts the paper's §2.3
// baseline (arbitrary local decisions) with polyvalues on the same
// failure schedule: both keep processing, but the arbitrary policy
// violates atomicity — the bank workload's conservation invariant breaks
// — while polyvalues never do.  Metrics: conservation indicator (1 =
// money conserved) per policy.
func BenchmarkAblationRelaxedConsistency(b *testing.B) {
	run := func(p Policy, seed int64) ExperimentReport {
		rep, err := RunExperiment(Experiment{
			Sites: 3, Items: 8, Txns: 60,
			Workload: WorkloadBank, Policy: p,
			CrashEvery: 10, RepairAfter: time.Second,
			Gap: 100 * time.Millisecond, Seed: seed,
		})
		if err != nil {
			b.Fatal(err)
		}
		return rep
	}
	arbViolations, polyViolations, trials := 0, 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arb := run(PolicyArbitrary, int64(i))
		poly := run(PolicyPolyvalue, int64(i))
		trials++
		if !arb.ConservationOK {
			arbViolations++
		}
		if !poly.ConservationOK {
			polyViolations++
		}
	}
	b.ReportMetric(1-float64(arbViolations)/float64(trials), "arbitrary_conserved")
	b.ReportMetric(1-float64(polyViolations)/float64(trials), "polyvalue_conserved")
	if polyViolations > 0 {
		b.Fatal("polyvalue policy violated conservation")
	}
}

// BenchmarkClusterAvailabilityHarness runs the E3 experiment: the live
// protocol under a crash schedule, reporting availability during failure
// windows and the polyvalue population peak — the cluster-level
// validation of the paper's availability claim (cf. the §4 analysis,
// which this complements).
func BenchmarkClusterAvailabilityHarness(b *testing.B) {
	var poly, block ExperimentReport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		poly, err = RunExperiment(Experiment{
			Sites: 3, Items: 6, Txns: 60,
			Workload: WorkloadBank, Policy: PolicyPolyvalue,
			CrashEvery: 15, RepairAfter: time.Second,
			Gap: 100 * time.Millisecond, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		block, err = RunExperiment(Experiment{
			Sites: 3, Items: 6, Txns: 60,
			Workload: WorkloadBank, Policy: PolicyBlocking,
			CrashEvery: 15, RepairAfter: time.Second,
			Gap: 100 * time.Millisecond, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(poly.Availability(), "polyvalue_availability")
	b.ReportMetric(block.Availability(), "blocking_availability")
	b.ReportMetric(float64(poly.PeakPolys), "peak_polyvalues")
	b.ReportMetric(float64(poly.FinalPolys), "final_polyvalues")
}

// BenchmarkAvailabilityCurve regenerates the E5 experiment: availability
// under increasing failure frequency, polyvalue vs blocking.  Metrics
// report the two policies' availability at the highest failure rate —
// the regime where the paper's mechanism matters most.
func BenchmarkAvailabilityCurve(b *testing.B) {
	base := Experiment{
		Sites: 3, Items: 6, Txns: 60,
		Workload:    WorkloadBank,
		RepairAfter: time.Second,
		Gap:         100 * time.Millisecond,
	}
	var points []harness.CurvePoint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base.Seed = int64(i)
		var err error
		points, err = harness.AvailabilityCurve(base, []int{8, 15, 30})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(points[0].Polyvalue, "polyvalue_at_high_failure_rate")
	b.ReportMetric(points[0].Blocking, "blocking_at_high_failure_rate")
}

// BenchmarkBurstDecayTransient regenerates the E4 experiment: the §4.1
// stability claim ("a serious failure causing the introduction of many
// polyvalues does not cause the number of polyvalues to grow without
// limit").  A burst of 500 polyvalues is injected and the simulated
// decay is compared against the model transient; the metric is the mean
// relative error over the decay horizon.
func BenchmarkBurstDecayTransient(b *testing.B) {
	m := ModelParams{U: 10, F: 0.01, I: 10000, R: 0.01, Y: 0, D: 1}
	const p0 = 500
	var meanErr float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := SimRun(SimParams{
			Model: m, Seed: int64(i), Warmup: 0.001, Measure: 400,
			InitialPolyvalues: p0, SampleEvery: 50,
		})
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		n := 0
		for _, s := range r.Series {
			if s.T == 0 {
				continue
			}
			want := m.Transient(p0, s.T)
			sum += math.Abs(float64(s.P)-want) / want
			n++
		}
		meanErr = sum / float64(n)
	}
	b.ReportMetric(meanErr, "mean_rel_err_vs_transient")
}

// ---------------------------------------------------------------------
// Micro-benchmarks of the core data structures and the runtime
// ---------------------------------------------------------------------

// BenchmarkConditionAlgebra measures canonical SOP operations on the
// condition shapes polyvalues actually produce.
func BenchmarkConditionAlgebra(b *testing.B) {
	a := condition.MustParse("T1&!T2 | T3")
	c := condition.MustParse("!T1&T4 | T2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := a.And(c)
		e := a.Or(c)
		_ = d.Assign("T1", true)
		_ = e.Not()
	}
}

// BenchmarkPolyvalueUncertainResolve measures the §3.1 install and §3.3
// reduce path for one item.
func BenchmarkPolyvalueUncertainResolve(b *testing.B) {
	old := Simple(Int(100))
	for i := 0; i < b.N; i++ {
		p := Uncertain("T1", Simple(Int(60)), old)
		p = Uncertain("T2", Simple(Int(50)), p)
		p = p.Resolve("T1", true)
		p = p.Resolve("T2", false)
		if _, certain := p.IsCertain(); !certain {
			b.Fatal("did not resolve")
		}
	}
}

// BenchmarkClusterCommit measures one distributed commit (three sites,
// two items) end to end on the simulated network.
func BenchmarkClusterCommit(b *testing.B) {
	c, err := NewCluster(ClusterConfig{
		Sites: []SiteID{"A", "B", "C"},
		Net:   NetConfig{Latency: time.Millisecond},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.Load("x", Simple(Int(0))); err != nil {
		b.Fatal(err)
	}
	if err := c.Load("y", Simple(Int(0))); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := c.Submit("A", "x = x + 1; y = y + 1")
		if err != nil {
			b.Fatal(err)
		}
		c.RunFor(time.Second)
		if h.Status() != StatusCommitted {
			b.Fatalf("status = %v (%s)", h.Status(), h.Reason())
		}
	}
}

// BenchmarkClusterScaling measures one distributed commit as the site
// count (and so the participant fan-out) grows.
func BenchmarkClusterScaling(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("sites=%d", n), func(b *testing.B) {
			sites := make([]SiteID, n)
			for i := range sites {
				sites[i] = SiteID(fmt.Sprintf("s%d", i))
			}
			c, err := NewCluster(ClusterConfig{
				Sites: sites,
				Net:   NetConfig{Latency: time.Millisecond},
				Placement: func(item string) SiteID {
					// One item per site: itemK on site K.
					return sites[int(item[len(item)-1]-'0')%n]
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			src := ""
			for i := 0; i < n && i < 8; i++ {
				if i > 0 {
					src += "; "
				}
				src += fmt.Sprintf("item%d = item%d + 1", i, i)
			}
			for i := 0; i < n && i < 8; i++ {
				if err := c.Load(fmt.Sprintf("item%d", i), Simple(Int(0))); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h, err := c.Submit(sites[0], src)
				if err != nil {
					b.Fatal(err)
				}
				c.RunFor(time.Second)
				if h.Status() != StatusCommitted {
					b.Fatalf("status = %v (%s)", h.Status(), h.Reason())
				}
			}
		})
	}
}

// BenchmarkWALAppendRecover measures the storage engine's durability
// path: append one put and replay a 1000-record log.
func BenchmarkWALAppendRecover(b *testing.B) {
	seed := storage.NewStore()
	for i := 0; i < 1000; i++ {
		if err := seed.Put(fmt.Sprintf("item%d", i%100), Simple(Int(int64(i)))); err != nil {
			b.Fatal(err)
		}
	}
	log := seed.WALBytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := storage.Recover(log)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Put("x", Simple(Int(int64(i)))); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(log)))
}

// BenchmarkSimulation measures the §4.2 simulator's event throughput at
// the paper's main Table 2 operating point.
func BenchmarkSimulation(b *testing.B) {
	p := SimParams{Model: ModelParams{U: 10, F: 0.01, I: 10000, R: 0.01, Y: 0, D: 1},
		Warmup: 100, Measure: 2000}
	var txns int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i)
		r, err := SimRun(p)
		if err != nil {
			b.Fatal(err)
		}
		txns += r.Transactions
	}
	b.ReportMetric(float64(txns)/float64(b.N), "txns/run")
}

// BenchmarkPolytxnQueryUncertain measures §3.4 uncertain-output query
// evaluation.
func BenchmarkPolytxnQueryUncertain(b *testing.B) {
	seats := Uncertain("T1", Simple(Int(12)), Simple(Int(13)))
	node, err := ParseExpr("150 - seats")
	if err != nil {
		b.Fatal(err)
	}
	ex := &polytxn.Executor{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := ex.EvalQuery(node, func(string) Poly { return seats })
		if err != nil {
			b.Fatal(err)
		}
		if p.NumPairs() != 2 {
			b.Fatal("wrong fan-out")
		}
	}
}

// BenchmarkWireCodec measures the binary message codec used by the TCP
// transport: frame encode and decode across three representative shapes
// (B/op shows the bounded decode allocations).
func BenchmarkWireCodec(b *testing.B) {
	poly := polyvalue.Uncertain("T1",
		polyvalue.Simple(value.Int(70)),
		polyvalue.Simple(value.Int(100)))
	nested := polyvalue.Uncertain("T2", poly, polyvalue.Simple(value.Int(0)))

	largeValues := map[string]polyvalue.Poly{}
	var largeItems []string
	for i := 0; i < 32; i++ {
		item := fmt.Sprintf("acct%02d", i)
		largeItems = append(largeItems, item)
		largeValues[item] = nested
	}

	cases := []struct {
		name string
		msg  protocol.Message
	}{
		{"small", protocol.Message{
			Kind: protocol.MsgOutcomeAck, TID: "t42", From: "A", To: "B",
		}},
		{"typical", protocol.Message{
			Kind: protocol.MsgReadRep, TID: "t42", From: "B", To: "A",
			Items: []string{"acct1", "acct2"},
			Values: map[string]polyvalue.Poly{
				"acct1": polyvalue.Simple(value.Int(100)),
				"acct2": poly,
			},
		}},
		{"large", protocol.Message{
			Kind: protocol.MsgPrepare, TID: "t42", From: "A", To: "C",
			Items:   largeItems,
			Values:  largeValues,
			Program: "acct00 = acct00 - 30 if acct00 >= 30; acct01 = acct01 + 30 if acct00 >= 30",
		}},
	}
	for _, tc := range cases {
		frame := wire.EncodeFrame(tc.msg)
		b.Run("encode/"+tc.name, func(b *testing.B) {
			b.ReportMetric(float64(len(frame)), "frame_bytes")
			buf := make([]byte, 0, len(frame))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = wire.AppendFrame(buf[:0], tc.msg)
			}
			_ = buf
		})
		b.Run("decode/"+tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := wire.DecodeFrame(frame); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
