package polyvalues

import (
	"repro/internal/condition"
	"repro/internal/polyvalue"
	"repro/internal/value"
)

// ---------------------------------------------------------------------
// Values
// ---------------------------------------------------------------------

// Value is a simple scalar database value (Int, Float, Str, Bool, Nil).
type Value = value.V

// Int is a 64-bit integer value.
type Int = value.Int

// Float is a 64-bit floating-point value.
type Float = value.Float

// Str is a string value.
type Str = value.Str

// Bool is a boolean value.
type Bool = value.Bool

// Nil is the absent value of never-written items.
type Nil = value.Nil

// AsInt extracts an integer from a numeric value.
func AsInt(v Value) (int64, bool) { return value.AsInt(v) }

// AsFloat extracts a float from a numeric value.
func AsFloat(v Value) (float64, bool) { return value.AsFloat(v) }

// ---------------------------------------------------------------------
// Conditions
// ---------------------------------------------------------------------

// TID identifies a transaction; conditions are predicates over TIDs.
type TID = condition.TID

// Cond is a condition in canonical sum-of-products form.
type Cond = condition.Cond

// CondTrue returns the constant-true condition.
func CondTrue() Cond { return condition.True() }

// CondFalse returns the constant-false condition.
func CondFalse() Cond { return condition.False() }

// Committed returns the condition "transaction t committed".
func Committed(t TID) Cond { return condition.Committed(t) }

// Aborted returns the condition "transaction t aborted".
func Aborted(t TID) Cond { return condition.Aborted(t) }

// ParseCond parses the textual condition syntax, e.g. "T1&!T2 | T3".
func ParseCond(s string) (Cond, error) { return condition.Parse(s) }

// ---------------------------------------------------------------------
// Polyvalues
// ---------------------------------------------------------------------

// Poly is a polyvalue: a set of ⟨value, condition⟩ pairs with complete
// and disjoint conditions.  A certain value is a one-pair polyvalue.
type Poly = polyvalue.Poly

// Pair couples a value with the condition under which it is correct.
type Pair = polyvalue.Pair

// Alternative pairs a condition with the value computed by one
// alternative transaction (§3.2).
type Alternative = polyvalue.Alternative

// Simple wraps a certain value as the trivial polyvalue ⟨v, true⟩.
func Simple(v Value) Poly { return polyvalue.Simple(v) }

// NewPoly builds a polyvalue from explicit pairs, validating the
// completeness/disjointness invariant.
func NewPoly(pairs []Pair) (Poly, error) { return polyvalue.New(pairs) }

// Uncertain constructs the §3.1 in-doubt polyvalue
// {⟨new, T⟩, ⟨old, ¬T⟩}.
func Uncertain(t TID, newV, oldV Poly) Poly { return polyvalue.Uncertain(t, newV, oldV) }

// Compose assembles a polytransaction's output from its alternatives,
// flattening nesting and simplifying (§3.2).
func Compose(alts []Alternative) Poly { return polyvalue.Compose(alts) }
