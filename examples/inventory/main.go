// Inventory / process control (§5): "real time operation is important;
// however, the exact values of the items in the database are frequently
// not needed for the important real time effects."
//
// A warehouse tracks stock across sites.  A replenishment transaction is
// interrupted, leaving a stock level uncertain.  Order picking continues
// against the PESSIMISTIC bound (ship only what is present under every
// outcome), and a low-stock alarm fires on the pessimistic bound too —
// the real-time control decisions never wait for the repair.
//
//	go run ./examples/inventory
package main

import (
	"fmt"
	"time"

	polyvalues "repro"
)

func main() {
	cluster, err := polyvalues.NewCluster(polyvalues.ClusterConfig{
		Sites: []polyvalues.SiteID{"warehouse", "dock", "office"},
		Net:   polyvalues.NetConfig{Latency: 10 * time.Millisecond},
		Placement: func(item string) polyvalues.SiteID {
			switch item[0] {
			case 's':
				return "warehouse"
			case 'd':
				return "dock"
			default:
				return "office"
			}
		},
	})
	if err != nil {
		panic(err)
	}
	defer cluster.Close()
	must(cluster.Load("sku_widget", polyvalues.Simple(polyvalues.Int(12))))
	must(cluster.Load("dock_shipped", polyvalues.Simple(polyvalues.Int(0))))

	// Replenishment (+40) is interrupted at the critical moment: did the
	// truck's delivery get recorded or not?
	cluster.ArmCrashBeforeDecision("office")
	h, err := cluster.Submit("office", "sku_widget = sku_widget + 40")
	must(err)
	cluster.RunFor(2 * time.Second)
	fmt.Println("replenishment:", h.Status(), "(office crashed mid-commit)")
	stock := cluster.Read("sku_widget")
	min, max, _ := stock.MinMax()
	fmt.Printf("stock: %s — between %g and %g units\n", stock, min, max)

	// Order picking continues: ship 10 only if stock >= 10 under EVERY
	// outcome.  The guard reads the polyvalue; because 12 >= 10 and
	// 52 >= 10, all alternatives agree and the pick commits.
	pick, err := cluster.Submit("dock",
		"sku_widget = sku_widget - 10 if sku_widget >= 10;"+
			"dock_shipped = dock_shipped + 10 if sku_widget >= 10")
	must(err)
	cluster.RunFor(2 * time.Second)
	fmt.Println("\npick 10 units:", pick.Status())
	fmt.Println("stock:", cluster.Read("sku_widget"))
	fmt.Println("shipped:", cluster.Read("dock_shipped"), "(certain — both branches shipped 10)")

	// A second large pick of 30 is where the branches disagree: only the
	// replenished branch has stock.  The transaction still commits — its
	// effect is conditional, captured faithfully in the polyvalues.
	pick2, err := cluster.Submit("dock",
		"sku_widget = sku_widget - 30 if sku_widget >= 30;"+
			"dock_shipped = dock_shipped + 30 if sku_widget >= 30")
	must(err)
	cluster.RunFor(2 * time.Second)
	fmt.Println("\npick 30 units:", pick2.Status())
	fmt.Println("stock:", cluster.Read("sku_widget"))
	fmt.Println("shipped:", cluster.Read("dock_shipped"))

	// Real-time low-stock alarm on the pessimistic bound (§3.4): the
	// controller acts on min(stock) without waiting.
	q, err := cluster.Query("warehouse", "sku_widget")
	must(err)
	cluster.RunFor(time.Second)
	if p, qerr, done := q.Result(); done && qerr == nil {
		lo, hi, _ := p.MinMax()
		fmt.Printf("\ncontrol loop reads stock in [%g, %g]; low-stock alarm (<5): %v\n",
			lo, hi, lo < 5)
	}

	// Repair: the office restarts; the replenishment is presumed aborted
	// and every quantity becomes exact again — including the shipped
	// counter, which retroactively resolves to the branch that was real.
	cluster.Restart("office")
	cluster.RunFor(10 * time.Second)
	fmt.Println("\nafter repair:")
	fmt.Println("stock:  ", cluster.Read("sku_widget"))
	fmt.Println("shipped:", cluster.Read("dock_shipped"))
	fmt.Println("polyvalued items remaining:", len(cluster.PolyItems()))
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
