// Funds transfer / credit authorization (§5): "the important effect
// (distribution of funds or goods) depends only on the fact that the
// relevant accounts contain enough funds, not on exactly how much."
//
// A bank runs on three sites.  A transfer is interrupted by a
// coordinator crash at the critical 2PC moment, leaving two account
// balances uncertain.  Credit authorizations against those accounts keep
// being answered — promptly and correctly — because the answer is the
// same under every possible balance.  When the failed site recovers, the
// balances snap back to certainty.
//
//	go run ./examples/funds
package main

import (
	"fmt"
	"time"

	polyvalues "repro"
)

func main() {
	cluster, err := polyvalues.NewCluster(polyvalues.ClusterConfig{
		Sites: []polyvalues.SiteID{"branch-east", "branch-west", "clearing"},
		Net:   polyvalues.NetConfig{Latency: 10 * time.Millisecond},
		Placement: func(item string) polyvalues.SiteID {
			switch item[0] {
			case 'e':
				return "branch-east"
			case 'w':
				return "branch-west"
			default:
				return "clearing"
			}
		},
	})
	if err != nil {
		panic(err)
	}
	defer cluster.Close()

	must(cluster.Load("east_alice", polyvalues.Simple(polyvalues.Int(800))))
	must(cluster.Load("west_bob", polyvalues.Simple(polyvalues.Int(150))))

	// A normal transfer commits cleanly.
	h, err := cluster.Submit("clearing",
		"east_alice = east_alice - 100 if east_alice >= 100;"+
			"west_bob = west_bob + 100 if east_alice >= 100")
	must(err)
	cluster.RunFor(time.Second)
	fmt.Println("transfer 1:", h.Status())
	fmt.Println("  alice:", cluster.Read("east_alice"), " bob:", cluster.Read("west_bob"))

	// The clearing house crashes at the critical moment of the next
	// transfer: both branches are in the wait phase and no decision will
	// ever arrive.  They time out and install polyvalues.
	cluster.ArmCrashBeforeDecision("clearing")
	h2, err := cluster.Submit("clearing",
		"east_alice = east_alice - 50 if east_alice >= 50;"+
			"west_bob = west_bob + 50 if east_alice >= 50")
	must(err)
	cluster.RunFor(2 * time.Second)
	fmt.Println("\ntransfer 2:", h2.Status(), "(clearing house crashed mid-commit)")
	fmt.Println("  alice:", cluster.Read("east_alice"))
	fmt.Println("  bob:  ", cluster.Read("west_bob"))

	// Credit authorization against the uncertain balance: alice has at
	// least 650 under every outcome, so a 500 authorization is approved
	// with a CERTAIN answer while the failure is still outstanding.
	auth, err := cluster.Submit("branch-east", "east_auth = east_alice >= 500")
	must(err)
	cluster.RunFor(2 * time.Second)
	fmt.Println("\nauthorize 500 against alice:", auth.Status())
	fmt.Println("  approved:", cluster.Read("east_auth"), "(a simple value — uncertainty did not propagate)")

	// An exact-balance query is honest about the uncertainty (§3.4): the
	// teller sees both possibilities rather than waiting for repair.
	q, err := cluster.Query("branch-west", "west_bob")
	must(err)
	cluster.RunFor(time.Second)
	if p, qerr, done := q.Result(); done && qerr == nil {
		min, max, _ := p.MinMax()
		fmt.Printf("\nbob's balance right now: %s (somewhere in [%g, %g])\n", p, min, max)
	}

	// Repair: the clearing house restarts with no record of the
	// decision, so the in-doubt transfer is presumed aborted and every
	// polyvalue reduces.
	cluster.Restart("clearing")
	cluster.RunFor(10 * time.Second)
	fmt.Println("\nafter repair:")
	fmt.Println("  alice:", cluster.Read("east_alice"), " bob:", cluster.Read("west_bob"))
	fmt.Println("  polyvalued items remaining:", len(cluster.PolyItems()))
	st := cluster.Stats()
	fmt.Printf("  protocol: %d committed, %d in doubt, %d polyvalue installs, %d reductions\n",
		st.Committed, st.InDoubt, st.PolyInstalls, st.PolyReductions)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
