// Reservations (§5): "if the number of reservations granted is a
// polyvalue, then a new reservation can be granted so long as the largest
// value in that polyvalue is less than the number of available rooms or
// seats.  All alternative transactions of such a polytransaction will
// decide to grant the reservation."
//
// A flight's booking counter becomes uncertain after a failure.  Seat
// grants continue: the guard "booked < capacity" holds in every
// alternative while there is room under the WORST case, so the grant
// itself is unconditional even though the count is not.  Near capacity,
// the uncertain counter correctly stops risky grants.
//
//	go run ./examples/reservations
package main

import (
	"fmt"
	"time"

	polyvalues "repro"
)

const capacity = 150

func main() {
	cluster, err := polyvalues.NewCluster(polyvalues.ClusterConfig{
		Sites: []polyvalues.SiteID{"gate", "desk", "ops"},
		Net:   polyvalues.NetConfig{Latency: 10 * time.Millisecond},
		Placement: func(item string) polyvalues.SiteID {
			switch item[0] {
			case 'f':
				return "gate"
			case 'l':
				return "desk"
			default:
				return "ops"
			}
		},
	})
	if err != nil {
		panic(err)
	}
	defer cluster.Close()
	must(cluster.Load("flight101", polyvalues.Simple(polyvalues.Int(140))))
	must(cluster.Load("log", polyvalues.Simple(polyvalues.Int(0))))

	// A group booking of 4 is in flight when the ops site (coordinating)
	// crashes at the critical moment: the gate can no longer know whether
	// 140 or 144 seats are booked.
	cluster.ArmCrashBeforeDecision("ops")
	h, err := cluster.Submit("ops",
		"flight101 = flight101 + 4 if flight101 + 4 <= 150;"+
			"log = log + 1 if flight101 + 4 <= 150")
	must(err)
	cluster.RunFor(2 * time.Second)
	fmt.Println("group booking:", h.Status(), "(ops crashed mid-commit)")
	fmt.Println("booked counter:", cluster.Read("flight101"))

	// Ticket agents keep selling.  Each grant is a polytransaction whose
	// alternatives ALL decide yes while max(booked)+1 <= capacity.
	granted, refused := 0, 0
	for i := 0; i < 8; i++ {
		g, err := cluster.Submit("gate",
			fmt.Sprintf("flight101 = flight101 + 1 if flight101 + 1 <= %d", capacity))
		must(err)
		cluster.RunFor(time.Second)
		booked := cluster.Read("flight101")
		min, max, _ := booked.MinMax()
		if g.Status() == polyvalues.StatusCommitted {
			granted++
			fmt.Printf("  sale %d: granted — booked now in [%g, %g]\n", i+1, min, max)
		} else {
			refused++
			fmt.Printf("  sale %d: NOT granted (%s)\n", i+1, g.Reason())
		}
	}
	fmt.Printf("sales while in doubt: %d granted, %d refused\n", granted, refused)

	// The agent's availability screen shows the honest range (§3.4).
	q, err := cluster.Query("desk", fmt.Sprintf("%d - flight101", capacity))
	must(err)
	cluster.RunFor(time.Second)
	if p, qerr, done := q.Result(); done && qerr == nil {
		min, max, _ := p.MinMax()
		fmt.Printf("seats remaining: between %g and %g\n", min, max)
	}

	// Repair: ops restarts, the group booking is presumed aborted, and
	// the counter collapses to a single number.
	cluster.Restart("ops")
	cluster.RunFor(10 * time.Second)
	fmt.Println("\nafter repair, booked counter:", cluster.Read("flight101"))
	if v, certain := cluster.Read("flight101").IsCertain(); certain {
		n, _ := polyvalues.AsInt(v)
		fmt.Printf("final: %d booked, %d seats free, overbooked: %v\n",
			n, capacity-n, n > capacity)
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
