// Quickstart: the polyvalue mechanism in five minutes.
//
// Demonstrates the §3 core without a cluster: constructing the in-doubt
// polyvalue a site installs when two-phase commit is interrupted, running
// a polytransaction over it, and reducing everything once the outcome is
// known.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	polyvalues "repro"
)

func main() {
	// A two-phase commit was interrupted: transaction T7 was debiting an
	// account from 100 to 60 when the coordinator vanished.  The site
	// cannot know whether T7 committed, so it installs a polyvalue —
	// {<60, T7>, <100, !T7>} — and keeps going (§3.1).
	balance := polyvalues.Uncertain("T7",
		polyvalues.Simple(polyvalues.Int(60)),
		polyvalues.Simple(polyvalues.Int(100)))
	fmt.Println("in-doubt balance:", balance)

	// The item stays usable.  A later transaction reading it becomes a
	// polytransaction (§3.2): it runs once per possible input value and
	// writes a polyvalue recording every alternative outcome.
	debit := polyvalues.MustTxn("T8", "balance = balance - 25 if balance >= 25")
	ex := &polyvalues.Executor{}
	res, err := ex.Execute(debit, func(item string) polyvalues.Poly { return balance })
	if err != nil {
		panic(err)
	}
	balance = res.Writes["balance"]
	fmt.Printf("after a further debit (%d alternatives): %s\n", res.Alternatives, balance)

	// Crucially, outputs that do not depend on WHICH value is real come
	// out certain.  A credit check passes either way, so the answer is a
	// simple value — no uncertainty propagates (§5, credit authorization).
	check := polyvalues.MustTxn("T9", "ok = balance >= 30")
	res2, err := ex.Execute(check, func(item string) polyvalues.Poly { return balance })
	if err != nil {
		panic(err)
	}
	fmt.Println("credit check >= 30 :", res2.Writes["ok"], "— certain:", res2.Certain)

	// Range queries work on uncertainty directly: a reservation system
	// books a seat as long as the LARGEST possible count fits (§5).
	min, max, _ := balance.MinMax()
	fmt.Printf("balance is somewhere in [%g, %g]\n", min, max)

	// The failure is repaired and T7's outcome arrives (§3.3): replace
	// T7 with true/false in every condition and simplify.  All
	// uncertainty vanishes.
	committed := balance.Resolve("T7", true)
	aborted := balance.Resolve("T7", false)
	fmt.Println("if T7 committed:", committed)
	fmt.Println("if T7 aborted:  ", aborted)
}
