// Outage drill: the paper's §2 design space, measured head to head.
//
// The same bank workload and the same coordinator-crash schedule run
// three times, once per wait-timeout policy:
//
//   - blocking   — classic 2PC (§2.2-style): in-doubt items stay locked
//
//   - arbitrary  — relaxed consistency (§2.3): sites guess; atomicity
//     can break (watch the conservation column)
//
//   - polyvalue  — the paper's mechanism (§2.4): availability AND
//     correctness
//
//     go run ./examples/outagedrill
package main

import (
	"fmt"
	"time"

	polyvalues "repro"
)

func main() {
	fmt.Println("outage drill: 3 sites, bank workload, coordinator crashes mid-commit every 12 txns")
	fmt.Println()
	fmt.Printf("%-10s %-22s %-12s %-11s %-10s %s\n",
		"policy", "committed/aborted", "availability", "peak polys", "conserved", "note")

	for _, policy := range []polyvalues.Policy{
		polyvalues.PolicyBlocking,
		polyvalues.PolicyArbitrary,
		polyvalues.PolicyPolyvalue,
	} {
		rep, err := polyvalues.RunExperiment(polyvalues.Experiment{
			Sites: 3, Items: 8, Txns: 72,
			Workload: polyvalues.WorkloadBank, Policy: policy,
			CrashEvery: 12, RepairAfter: time.Second,
			Gap: 100 * time.Millisecond, Seed: 9,
		})
		if err != nil {
			panic(err)
		}
		note := ""
		switch {
		case policy == polyvalues.PolicyBlocking:
			note = "items locked until repair"
		case policy == polyvalues.PolicyArbitrary && !rep.ConservationOK:
			note = fmt.Sprintf("ATOMICITY VIOLATED: %+d money", rep.TotalAfter-rep.TotalBefore)
		case policy == polyvalues.PolicyPolyvalue:
			note = "available and consistent"
		}
		fmt.Printf("%-10s %-22s %-12.2f %-11d %-10v %s\n",
			policy,
			fmt.Sprintf("%d / %d", rep.Committed, rep.Aborted),
			rep.Availability(), rep.PeakPolys, rep.ConservationOK, note)
	}

	fmt.Println()
	fmt.Println("availability = committed fraction of transactions submitted while a site was down")
	fmt.Println("conserved    = total bank balance unchanged after repair (the atomicity invariant)")
}
