// Replication (§3): "an item that is replicated at several sites can be
// viewed as a set of individual items, one for each site."
//
// A balance is replicated on three sites (write-all / read-one).  Reads
// survive any site failure by failing over to another replica.  Then a
// replicated write is interrupted at the critical 2PC moment: every
// replica goes in doubt *coherently* — the same condition on every copy
// — and when the failure is repaired all replicas reduce to the same
// certain value.  Replication and polyvalues compose.
//
//	go run ./examples/replicated
package main

import (
	"fmt"
	"time"

	polyvalues "repro"
)

const k = 3 // replication factor

func main() {
	sites := []polyvalues.SiteID{"s0", "s1", "s2", "s3"}
	cluster, err := polyvalues.NewCluster(polyvalues.ClusterConfig{
		Sites:     sites,
		Net:       polyvalues.NetConfig{Latency: 10 * time.Millisecond},
		Placement: polyvalues.ReplicaPlacement(sites),
	})
	must(err)
	defer cluster.Close()

	for i := 0; i < k; i++ {
		must(cluster.Load(polyvalues.ReplicaName("bal", i),
			polyvalues.Simple(polyvalues.Int(1000))))
	}
	fmt.Println("bal replicated 3 ways:")
	for i := 0; i < k; i++ {
		name := polyvalues.ReplicaName("bal", i)
		fmt.Printf("  %s on %s = %s\n", name,
			polyvalues.ReplicaPlacement(sites)(name), cluster.Read(name))
	}

	// A replicated debit: one logical statement, rewritten to write all
	// three replicas atomically.
	prog, err := polyvalues.ParseProgram("bal = bal - 100 if bal >= 100")
	must(err)
	writeAll, err := polyvalues.ReplicateProgram(prog, k, 0)
	must(err)
	h, err := cluster.Submit("s0", writeAll.String())
	must(err)
	cluster.RunFor(time.Second)
	fmt.Println("\nreplicated debit:", h.Status())

	// Crash replica 0's site; reads fail over to replica 1.
	primary := polyvalues.ReplicaPlacement(sites)(polyvalues.ReplicaName("bal", 0))
	cluster.Crash(primary)
	fmt.Printf("\n%s (replica 0's site) crashed — failing reads over\n", primary)
	var coordinator polyvalues.SiteID
	for _, s := range sites {
		if s != primary {
			coordinator = s
			break
		}
	}
	readSrc, err := polyvalues.ReplicateExpr("bal", 1)
	must(err)
	q, err := cluster.Query(coordinator, readSrc)
	must(err)
	cluster.RunFor(time.Second)
	if p, qerr, done := q.Result(); done && qerr == nil {
		fmt.Println("read from replica 1:", p)
	}
	cluster.Restart(primary)
	cluster.RunFor(2 * time.Second)

	// Now interrupt a replicated write at the critical moment: the
	// coordinator crashes after collecting every ready.  All THREE
	// replicas become polyvalues with the SAME condition.
	var outsider polyvalues.SiteID
	replicaSites := map[polyvalues.SiteID]bool{}
	for i := 0; i < k; i++ {
		replicaSites[polyvalues.ReplicaPlacement(sites)(polyvalues.ReplicaName("bal", i))] = true
	}
	for _, s := range sites {
		if !replicaSites[s] {
			outsider = s
			break
		}
	}
	cluster.ArmCrashBeforeDecision(outsider)
	h2, err := cluster.Submit(outsider, writeAll.String())
	must(err)
	cluster.RunFor(2 * time.Second)
	fmt.Printf("\ninterrupted replicated debit (coordinator %s crashed): %v\n", outsider, h2.Status())
	for i := 0; i < k; i++ {
		fmt.Printf("  replica %d: %s\n", i, cluster.Read(polyvalues.ReplicaName("bal", i)))
	}

	// Repair: presumed abort; every replica reduces to the same value.
	cluster.Restart(outsider)
	cluster.RunFor(10 * time.Second)
	fmt.Println("\nafter repair:")
	for i := 0; i < k; i++ {
		fmt.Printf("  replica %d: %s\n", i, cluster.Read(polyvalues.ReplicaName("bal", i)))
	}
	fmt.Println("polyvalued items remaining:", len(cluster.PolyItems()))
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
