// Command polytables regenerates the paper's evaluation artifacts:
// Table 1 (analytic predictions), Table 2 (simulation vs prediction),
// and Figure 1 (the update-protocol state diagram).
//
// Usage:
//
//	polytables                  # print everything
//	polytables -table 1         # Table 1 only
//	polytables -table 2 -seed 7 -warmup 3000 -measure 60000
//	polytables -figure 1        # Figure 1 transition table
package main

import (
	"flag"
	"fmt"
	"os"

	polyvalues "repro"
)

func main() {
	table := flag.Int("table", 0, "print only this table (1 or 2); 0 = all")
	figure := flag.Int("figure", 0, "print only this figure (1); 0 = all")
	seed := flag.Int64("seed", 1, "simulation seed for Table 2")
	warmup := flag.Float64("warmup", 3000, "simulated warm-up seconds for Table 2")
	measure := flag.Float64("measure", 60000, "simulated measurement seconds for Table 2")
	runs := flag.Int("runs", 1, "runs per Table 2 row (≥ 2 prints mean ± standard error)")
	flag.Parse()

	all := *table == 0 && *figure == 0
	if all || *table == 1 {
		fmt.Println("Table 1 — Typical Predictions of the Number of Polyvalues in a Database")
		fmt.Println("(model P = U·F·I / (I·R + U·Y − U·D); paper values as printed)")
		fmt.Println()
		fmt.Print(polyvalues.FormatTable1())
		fmt.Println()
	}
	if all || *table == 2 {
		fmt.Println("Table 2 — Results of Simulating the Polyvalue Mechanism")
		fmt.Printf("(seed %d, warmup %gs, measure %gs of simulated time, %d run(s)/row)\n\n",
			*seed, *warmup, *measure, *runs)
		if *runs >= 2 {
			stats, err := polyvalues.RunTable2Multi(*runs, *seed, *warmup, *measure)
			if err != nil {
				fmt.Fprintln(os.Stderr, "polytables:", err)
				os.Exit(1)
			}
			fmt.Print(polyvalues.FormatTable2Multi(stats))
		} else {
			results, err := polyvalues.RunTable2(*seed, *warmup, *measure)
			if err != nil {
				fmt.Fprintln(os.Stderr, "polytables:", err)
				os.Exit(1)
			}
			fmt.Print(polyvalues.FormatTable2(results))
		}
		fmt.Println()
	}
	if all || *figure == 1 {
		fmt.Println("Figure 1 — The Update Protocol States")
		fmt.Println()
		fmt.Printf("%-10s %-16s %-10s %s\n", "state", "event", "next", "action")
		for _, tr := range polyvalues.Figure1Transitions() {
			fmt.Printf("%-10s %-16s %-10s %s\n", tr.From, tr.Event, tr.To, tr.Action)
		}
	}
}
