// Command polyverify crash-tests the polyvalue protocol: randomized
// failure schedules (coordinator failpoints, crashes, partitions,
// restarts) over a transfer workload, followed by a full correctness
// audit per seed — serial equivalence, conservation, polyvalue
// resolution, bookkeeping cleanup and global invariants.
//
// Usage:
//
//	polyverify -seeds 50 -txns 40 -sites 4
//	polyverify -seed 1234 -v        # replay one schedule verbosely
//
// Exit status 1 if any seed produces a violation.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	seeds := flag.Int("seeds", 25, "number of random schedules to run")
	firstSeed := flag.Int64("seed", 0, "first seed (schedules use seed..seed+seeds-1)")
	sites := flag.Int("sites", 4, "cluster size")
	items := flag.Int("items", 8, "database size")
	txns := flag.Int("txns", 40, "transactions per schedule")
	verbose := flag.Bool("v", false, "print every report, not just failures")
	flag.Parse()

	failures := 0
	for s := int64(0); s < int64(*seeds); s++ {
		seed := *firstSeed + s
		rep, err := harness.Torture(harness.TortureConfig{
			Seed: seed, Sites: *sites, Items: *items, Txns: *txns,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "polyverify: seed %d: %v\n", seed, err)
			os.Exit(1)
		}
		if !rep.OK() {
			failures++
			fmt.Printf("seed %-6d FAIL %s\n", seed, rep)
			for _, v := range rep.Violations {
				fmt.Printf("  %s\n", v)
			}
			continue
		}
		if *verbose {
			fmt.Printf("seed %-6d ok   %s\n", seed, rep)
		}
	}
	if failures > 0 {
		fmt.Printf("\n%d/%d schedules FAILED\n", failures, *seeds)
		os.Exit(1)
	}
	fmt.Printf("all %d schedules passed the audit\n", *seeds)
}
