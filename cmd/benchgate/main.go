// Command benchgate compares two named settings inside a polybench BENCH
// file and fails unless the candidate's committed-transaction throughput
// beats the baseline's by at least the required ratio.  It exists so CI
// can gate on a scaling result without depending on jq or shell float
// arithmetic:
//
//	benchgate -file BENCH_abc123.json \
//	    -baseline bank-procs-3site-durable-gmp16 \
//	    -candidate bank-procs-3site-durable-gmp16-lanes16 \
//	    -min-ratio 2.0
//
// Exit status 0 when candidate_tps >= baseline_tps * min-ratio, 1
// otherwise (including missing settings or an unreadable file).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// benchSetting mirrors the fields of polybench's per-setting record that
// the gate needs; unknown fields are ignored.
type benchSetting struct {
	Name          string  `json:"name"`
	ThroughputTPS float64 `json:"throughput_tps"`
	Committed     int     `json:"committed"`
	Lanes         int     `json:"lanes"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
}

type benchFile struct {
	Schema   int            `json:"schema"`
	Rev      string         `json:"rev"`
	Settings []benchSetting `json:"settings"`
}

func main() {
	var (
		file      = flag.String("file", "", "BENCH JSON file written by polybench -bench-out")
		baseline  = flag.String("baseline", "", "setting name of the baseline run")
		candidate = flag.String("candidate", "", "setting name of the candidate run")
		minRatio  = flag.Float64("min-ratio", 1.0, "required candidate/baseline throughput ratio")
	)
	flag.Parse()
	if *file == "" || *baseline == "" || *candidate == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -file, -baseline and -candidate are required")
		os.Exit(2)
	}
	if err := run(*file, *baseline, *candidate, *minRatio); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(path, baseline, candidate string, minRatio float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var f benchFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	find := func(name string) (benchSetting, error) {
		for _, s := range f.Settings {
			if s.Name == name {
				return s, nil
			}
		}
		return benchSetting{}, fmt.Errorf("%s: no setting %q (have %d settings)", path, name, len(f.Settings))
	}
	b, err := find(baseline)
	if err != nil {
		return err
	}
	c, err := find(candidate)
	if err != nil {
		return err
	}
	if b.ThroughputTPS <= 0 {
		return fmt.Errorf("baseline %q has non-positive throughput %.2f tps", b.Name, b.ThroughputTPS)
	}
	ratio := c.ThroughputTPS / b.ThroughputTPS
	fmt.Printf("benchgate: %s %.0f tps (lanes=%d gomaxprocs=%d) vs %s %.0f tps (lanes=%d gomaxprocs=%d): ratio %.2fx, need %.2fx\n",
		c.Name, c.ThroughputTPS, c.Lanes, c.GOMAXPROCS,
		b.Name, b.ThroughputTPS, b.Lanes, b.GOMAXPROCS, ratio, minRatio)
	if ratio < minRatio {
		return fmt.Errorf("scaling gate failed: %.2fx < required %.2fx", ratio, minRatio)
	}
	return nil
}
