// Command polycluster runs a live multi-site cluster through a failure
// scenario and prints the protocol's behaviour: a workload executes, a
// coordinator crashes at the critical moment, polyvalues appear, further
// work proceeds, the failure is repaired, and certainty is restored.
//
// Usage:
//
//	polycluster -sites 4 -txns 200 -workload bank -policy polyvalue -seed 1
//	polycluster -policy blocking      # watch the baseline stall instead
//	polycluster -trace                # dump the protocol event trace
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	polyvalues "repro"
	"repro/internal/harness"
	"repro/internal/trace"
	"repro/internal/workload"
)

// runComparison executes the -compare mode: one failure schedule, three
// policies, one table.
func runComparison(sites, items, txns int, kindName string, seed int64) {
	var kind workload.Kind
	switch kindName {
	case "bank":
		kind = workload.Bank
	case "reservations":
		kind = workload.Reservations
	case "inventory":
		kind = workload.Inventory
	default:
		fmt.Fprintf(os.Stderr, "polycluster: unknown workload %q\n", kindName)
		os.Exit(2)
	}
	cmp, err := harness.Compare(harness.Experiment{
		Sites: sites, Items: items, Txns: txns,
		Workload:   kind,
		CrashEvery: txns / 5, RepairAfter: time.Second,
		Gap: 100 * time.Millisecond, Seed: seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "polycluster:", err)
		os.Exit(1)
	}
	fmt.Printf("policy comparison: %d sites, %s workload, %d txns, coordinator crash every %d txns\n\n",
		sites, kind, txns, txns/5)
	fmt.Print(cmp.Format())
	if !cmp.Sound() {
		fmt.Println("\nWARNING: comparison did not reproduce the expected ordering")
	}
}

func main() {
	nSites := flag.Int("sites", 4, "number of sites")
	nTxns := flag.Int("txns", 200, "transactions to run")
	items := flag.Int("items", 64, "items in the database")
	kindName := flag.String("workload", "bank", "workload: bank, reservations or inventory")
	policyName := flag.String("policy", "polyvalue", "wait-timeout policy: polyvalue or blocking")
	seed := flag.Int64("seed", 1, "workload and network seed")
	crashAt := flag.Int("crash-at", 0, "transaction index at which the coordinator crashes mid-commit (0 = halfway)")
	showTrace := flag.Bool("trace", false, "print the protocol event trace")
	showStats := flag.Bool("stats", false, "print the metrics exposition and the repair-window diff")
	compare := flag.Bool("compare", false, "run the same workload+failure schedule under all three policies and print the comparison table")
	flag.Parse()

	if *compare {
		runComparison(*nSites, *items, *nTxns, *kindName, *seed)
		return
	}

	var kind polyvalues.WorkloadKind
	switch *kindName {
	case "bank":
		kind = polyvalues.WorkloadBank
	case "reservations":
		kind = polyvalues.WorkloadReservations
	case "inventory":
		kind = polyvalues.WorkloadInventory
	default:
		fmt.Fprintf(os.Stderr, "polycluster: unknown workload %q\n", *kindName)
		os.Exit(2)
	}
	var policy polyvalues.Policy
	switch *policyName {
	case "polyvalue":
		policy = polyvalues.PolicyPolyvalue
	case "blocking":
		policy = polyvalues.PolicyBlocking
	default:
		fmt.Fprintf(os.Stderr, "polycluster: unknown policy %q\n", *policyName)
		os.Exit(2)
	}
	if *nSites < 2 || *nTxns < 4 || *items < 2 {
		fmt.Fprintln(os.Stderr, "polycluster: need -sites >= 2, -txns >= 4, -items >= 2")
		os.Exit(2)
	}
	if *crashAt <= 0 {
		*crashAt = *nTxns / 2
	}

	sites := make([]polyvalues.SiteID, *nSites)
	for i := range sites {
		sites[i] = polyvalues.SiteID(fmt.Sprintf("site%d", i))
	}
	ring := trace.NewRing(10000)
	c, err := polyvalues.NewCluster(polyvalues.ClusterConfig{
		Sites:  sites,
		Net:    polyvalues.NetConfig{Latency: 10 * time.Millisecond, Jitter: 5 * time.Millisecond, Seed: *seed},
		Policy: policy,
		Tracer: ring,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "polycluster:", err)
		os.Exit(1)
	}
	defer c.Close()
	ring.Clock = c.Now

	gen, err := polyvalues.NewWorkload(polyvalues.WorkloadConfig{Kind: kind, Items: *items, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "polycluster:", err)
		os.Exit(1)
	}
	for item, p := range gen.InitialState() {
		if err := c.Load(item, p); err != nil {
			fmt.Fprintln(os.Stderr, "polycluster:", err)
			os.Exit(1)
		}
	}

	fmt.Printf("cluster: %d sites, %s workload over %d items, policy %s\n",
		*nSites, kind, *items, policy)
	crashed := false
	victim := sites[0]
	committed, aborted, pending := 0, 0, 0
	var handles []*polyvalues.Handle
	for i := 0; i < *nTxns; i++ {
		coord := sites[i%len(sites)]
		if i == *crashAt {
			// Arm the failpoint: this coordinator will crash after
			// collecting all readies, before broadcasting the decision.
			victim = coord
			c.ArmCrashBeforeDecision(victim)
			crashed = true
			fmt.Printf("txn %3d: arming coordinator crash at %s\n", i, victim)
		}
		h, err := c.Submit(coord, gen.Next())
		if err != nil {
			fmt.Fprintln(os.Stderr, "polycluster:", err)
			os.Exit(1)
		}
		handles = append(handles, h)
		c.RunFor(100 * time.Millisecond)
	}
	c.RunFor(3 * time.Second)

	polysMid := c.PolyItems()
	fmt.Printf("\nafter workload (site %s still down): %d items hold polyvalues: %v\n",
		victim, len(polysMid), polysMid)
	for _, h := range handles {
		switch h.Status() {
		case polyvalues.StatusCommitted:
			committed++
		case polyvalues.StatusAborted:
			aborted++
		default:
			pending++
		}
	}
	fmt.Printf("transactions: %d committed, %d aborted, %d in doubt at the client\n",
		committed, aborted, pending)
	st := c.Stats()
	fmt.Printf("protocol: %d wait-phase timeouts, %d polyvalue installs, %d refusals\n",
		st.InDoubt, st.PolyInstalls, st.Refused)

	preRepair := c.Metrics().Snapshot()
	if crashed {
		fmt.Printf("\nrepairing: restarting %s\n", victim)
		c.Restart(victim)
		c.RunFor(10 * time.Second)
		fmt.Printf("after repair: %d items hold polyvalues (reductions: %d)\n",
			len(c.PolyItems()), c.Stats().PolyReductions)
	}
	lat := c.LatencyHistogram()
	fmt.Printf("\ncommitted-txn latency (simulated): %s\n", lat.Summary())
	net := c.NetStats()
	fmt.Printf("network: %d sent, %d delivered, %d dropped (down), %d dropped (partition)\n",
		net.Sent, net.Delivered, net.DroppedDown, net.DroppedPartition)

	if *showStats {
		snap := c.Metrics().Snapshot()
		fmt.Println("\nmetrics exposition:")
		fmt.Print(snap.Export())
		if crashed {
			fmt.Println("\nrepair-window diff (what the repair changed):")
			fmt.Print(snap.Diff(preRepair).Export())
		}
	}

	if *showTrace {
		fmt.Println("\nprotocol trace:")
		for _, line := range ring.Entries() {
			fmt.Println(" ", line)
		}
		if n := ring.Dropped(); n > 0 {
			fmt.Printf("  (%d earlier events dropped)\n", n)
		}
	}
}
