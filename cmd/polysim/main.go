// Command polysim runs the §4.2 discrete-event simulation of a database
// using the polyvalue mechanism, for arbitrary parameters.
//
// Usage:
//
//	polysim -u 10 -f 0.01 -i 10000 -r 0.01 -y 0 -d 1 -seed 42
//	polysim -u 10 -f 0.01 -i 10000 -r 0.01 -sweep f -from 0.001 -to 0.02 -steps 5
//
// The sweep mode varies one parameter geometrically between -from and
// -to, printing a series suitable for plotting (parameter, predicted P,
// measured P).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	polyvalues "repro"
)

func main() {
	u := flag.Float64("u", 10, "U: updates per second")
	f := flag.Float64("f", 0.01, "F: probability an update fails")
	i := flag.Float64("i", 10000, "I: number of items")
	r := flag.Float64("r", 0.01, "R: proportion of failures recovered per second")
	y := flag.Float64("y", 0, "Y: probability the new value ignores the previous value")
	d := flag.Float64("d", 1, "D: mean number of items an update depends on")
	seed := flag.Int64("seed", 1, "RNG seed")
	warmup := flag.Float64("warmup", 0, "simulated warm-up seconds (0 = auto)")
	measure := flag.Float64("measure", 0, "simulated measurement seconds (0 = auto)")
	sweep := flag.String("sweep", "", "parameter to sweep: u, f, i, r, y or d")
	from := flag.Float64("from", 0, "sweep start value")
	to := flag.Float64("to", 0, "sweep end value")
	steps := flag.Int("steps", 5, "sweep steps")
	burst := flag.Int("burst", 0, "inject this many polyvalues at t=0 and print the decay series against the model transient")
	stats := flag.Bool("stats", false, "collect sim.* metrics and print the polyvalue lifetime histogram and raw exposition")
	flag.Parse()

	base := polyvalues.ModelParams{U: *u, F: *f, I: *i, R: *r, Y: *y, D: *d}

	if *burst > 0 {
		runBurst(base, *burst, *seed, *measure)
		return
	}
	if *sweep == "" {
		runOne(base, *seed, *warmup, *measure, *stats)
		return
	}
	if *from <= 0 || *to <= *from || *steps < 2 {
		fmt.Fprintln(os.Stderr, "polysim: sweep needs -from > 0, -to > -from, -steps >= 2")
		os.Exit(2)
	}
	fmt.Printf("%-12s %-12s %-12s %-12s\n", *sweep, "predicted", "measured", "polytxns")
	ratio := math.Pow(*to / *from, 1/float64(*steps-1))
	v := *from
	for s := 0; s < *steps; s++ {
		p := base
		switch *sweep {
		case "u":
			p.U = v
		case "f":
			p.F = v
		case "i":
			p.I = v
		case "r":
			p.R = v
		case "y":
			p.Y = v
		case "d":
			p.D = v
		default:
			fmt.Fprintf(os.Stderr, "polysim: unknown sweep parameter %q\n", *sweep)
			os.Exit(2)
		}
		res, err := polyvalues.SimRun(polyvalues.SimParams{
			Model: p, Seed: *seed + int64(s), Warmup: *warmup, Measure: *measure,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "polysim:", err)
			os.Exit(1)
		}
		fmt.Printf("%-12.5g %-12.3f %-12.3f %-12d\n", v, p.SteadyState(), res.MeanPolyvalues, res.PolyTransactions)
		v *= ratio
	}
}

// runBurst prints the decay of an injected polyvalue burst next to the
// §4.1 transient prediction (the paper's stability observation).
func runBurst(p polyvalues.ModelParams, burst int, seed int64, measure float64) {
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "polysim:", err)
		os.Exit(2)
	}
	if measure <= 0 {
		measure = 400
	}
	res, err := polyvalues.SimRun(polyvalues.SimParams{
		Model: p, Seed: seed, Warmup: 0.001, Measure: measure,
		InitialPolyvalues: burst, SampleEvery: measure / 16,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "polysim:", err)
		os.Exit(1)
	}
	fmt.Printf("burst of %d polyvalues, decay rate λ = %.4g/s, steady state %.2f\n\n",
		burst, p.Rate(), p.SteadyState())
	fmt.Printf("%-10s %-12s %-12s\n", "t (s)", "simulated", "transient")
	for _, s := range res.Series {
		fmt.Printf("%-10.0f %-12d %-12.1f\n", s.T, s.P, p.Transient(float64(burst), s.T))
	}
}

func runOne(p polyvalues.ModelParams, seed int64, warmup, measure float64, stats bool) {
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "polysim:", err)
		os.Exit(2)
	}
	fmt.Printf("parameters: %s\n", p)
	fmt.Printf("model: steady state P = %.3f, decay rate λ = %.6g/s, stable = %v\n",
		p.SteadyState(), p.Rate(), p.Stable())
	if p.Stable() {
		s := p.Sensitivities()
		fmt.Printf("sensitivities: ∂P/∂U=%.3g ∂P/∂F=%.3g ∂P/∂I=%.3g ∂P/∂R=%.3g ∂P/∂Y=%.3g ∂P/∂D=%.3g\n",
			s.DU, s.DF, s.DI, s.DR, s.DY, s.DD)
	}
	var reg *polyvalues.MetricsRegistry
	if stats {
		reg = polyvalues.NewMetricsRegistry()
	}
	res, err := polyvalues.SimRun(polyvalues.SimParams{Model: p, Seed: seed, Warmup: warmup, Measure: measure, Metrics: reg})
	if err != nil {
		fmt.Fprintln(os.Stderr, "polysim:", err)
		os.Exit(1)
	}
	fmt.Printf("simulated: %s over %.0fs\n", res, res.SimulatedSeconds)
	fmt.Printf("mean polyvalues: %.3f (model %.3f)\n", res.MeanPolyvalues, p.SteadyState())
	if reg != nil {
		snap := reg.Snapshot()
		if lt, ok := snap.Get("sim.poly.lifetime.seconds"); ok && lt.Count > 0 {
			fmt.Printf("polyvalue lifetime (simulated s): count %d  mean %.1f  p50 %.1f  p90 %.1f  p99 %.1f  max %.1f\n",
				lt.Count, lt.Mean(), lt.P50, lt.P90, lt.P99, lt.Max)
		}
		fmt.Println("\nmetrics exposition:")
		fmt.Print(snap.Export())
	}
}
