// Command polynode runs ONE site of a polyvalue cluster as its own OS
// process, speaking the internal/wire binary protocol to its peers over
// TCP.  Three terminals (or scripts/cluster_demo.sh) make a live
// cluster:
//
//	polynode -site A -peers A=:7001,B=:7002,C=:7003 -control :8001 -data /tmp/pv
//	polynode -site B -peers A=:7001,B=:7002,C=:7003 -control :8002 -data /tmp/pv
//	polynode -site C -peers A=:7001,B=:7002,C=:7003 -control :8003 -data /tmp/pv
//
// Each node exposes a line-based control port for clients and scripts:
//
//	PING                 liveness check
//	OWNER <item>         which site an item is placed at
//	LOAD <item> <int>    install an initial value (owner only)
//	READ <item>          current value: "certain <v>" or "poly <p>"
//	POLY                 list local items currently holding polyvalues
//	SUBMIT <program>     run a transaction, wait for the decision
//	ASYNC <program>      run a transaction, don't wait (returns the TID)
//	QUERY <expr>         read-only query, waits for the answer
//	ARMCRASH [point]     crash this site at a protocol crash point (default
//	                     before-decision, the paper's critical moment)
//	CRASHPOINTS          list the crash points ARMCRASH accepts
//	FAULT <cmd>          drive the fault-injection plane: drop/dup/delay/
//	                     corrupt/reset rules, partitions, heal, seed,
//	                     status, clear (see internal/fault plan grammar)
//	DISKFAULT <cmd>      drive the disk-fault plane under the WAL:
//	                     fsync/torn/enospc/readflip/slow rules, seed,
//	                     status, clear (see internal/storage plan
//	                     grammar; needs -data)
//	SPANS                dump the structured span log as one JSON line
//	                     (pipe site dumps into polytrace; needs -spans)
//	STATS                cluster + transport counters
//
// Responses end with a line starting "OK" or "ERR"; intermediate lines
// are prefixed "| ".  Client mode sends one command and prints the
// response:
//
//	polynode -call 127.0.0.1:8001 SUBMIT 'a = a - 10 if a >= 10; b = b + 10 if a >= 10'
//	polynode -call 127.0.0.1:8001 FAULT 'partition a=A b=B heal=5s'
//
// Every node's transport is wrapped in the fault injector; with no
// -faults plan and no FAULT commands it is a transparent pass-through.
// The overload-protection plane is opt-in per flag: -admission caps
// in-flight transactions, -txn-deadline bounds each transaction end to
// end, -poly-budget/-dep-budget cap polyvalue and dependency-table
// growth (degrading to blocking 2PC at the cap), and -heartbeat starts
// the peer failure detector with its circuit breaker.
//
// Quorum replication is opt-in the same way: -replicas K spreads every
// logical item across K physical replicas (hash-placed like any other
// item) with -write-quorum/-read-quorum controlling W and R (W+R > K
// enforced; defaults: majority W, R = K+1-W).  All processes must pass
// identical replication flags.  LOAD then installs the replicas the
// receiving process hosts — send the same LOAD to every node — and the
// anti-entropy gossip plane keeps replicas converging across failures;
// when -heartbeat is set, gossip peer selection skips suspected peers.
//
// Observability is opt-in the same way: -telemetry serves /metrics
// (OpenMetrics), /healthz, /trace and pprof over HTTP, -spans retains
// structured per-transaction spans (queried via /trace or dumped with
// SPANS for polytrace), and -trace-ring retains protocol trace lines.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"net"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/guard"
	"repro/internal/metrics"
	"repro/internal/polyvalue"
	"repro/internal/protocol"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/value"
)

func main() {
	var (
		site     = flag.String("site", "", "site ID this process hosts (required in server mode)")
		peersArg = flag.String("peers", "", "comma-separated site=host:port transport addresses for every site (required)")
		listen   = flag.String("listen", "", "transport bind address override (default: this site's -peers entry)")
		control  = flag.String("control", "", "control-port listen address (required in server mode)")
		dataDir  = flag.String("data", "", "WAL directory; restarting over the same directory recovers durable state")
		stats    = flag.Bool("stats", false, "print transport and cluster stats on shutdown")
		waitT    = flag.Duration("wait-timeout", 250*time.Millisecond, "participant wait-phase timeout before installing polyvalues")
		retryT   = flag.Duration("retry-interval", 250*time.Millisecond, "outcome-request retry pacing for in-doubt sites")
		admit    = flag.Int("admission", 0, "max in-flight coordinated transactions; over it submissions shed with an overload error (0: unlimited)")
		txnDl    = flag.Duration("txn-deadline", 0, "end-to-end transaction deadline; expired work aborts (0: none)")
		polyBdg  = flag.Int("poly-budget", 0, "max local polyvalue population before in-doubt work degrades to blocking 2PC (0: unlimited)")
		depBdg   = flag.Int("dep-budget", 0, "max dependency-table size before the same degradation (0: unlimited)")
		hbeat    = flag.Duration("heartbeat", 0, "peer heartbeat interval for the failure detector + circuit breaker (0: disabled)")
		replicas = flag.Int("replicas", 0, "replicate each logical item across this many sites with quorum commit (0: no replication; every process must pass the same value)")
		wquorum  = flag.Int("write-quorum", 0, "replicas that must install a write (default: majority of -replicas; every process must pass the same value)")
		rquorum  = flag.Int("read-quorum", 0, "replicas that must answer a read (default: replicas+1-W; every process must pass the same value)")
		planeArg = flag.String("decision-plane", "wal", "commit decision plane: wal (coordinator WAL only), paxos (Paxos Commit over 2F+1 acceptors), or blocking2pc (wal plane, polyvalues off); every process must pass the same value")
		place    = flag.String("place", "", "comma-separated item=site placement pins (every process must pass the same value); unlisted items hash across sites")
		faults   = flag.String("faults", "", "initial fault plan, ';'-separated injector commands (e.g. 'drop to=B p=0.1; delay p=0.2 min=5ms max=40ms')")
		faultSd  = flag.Int64("fault-seed", 1, "PRNG seed for the fault injector (same seed, same fault decisions)")
		telAddr  = flag.String("telemetry", "", "serve /metrics, /healthz, /trace and pprof on this address (e.g. :9090; empty: disabled)")
		spansCap = flag.Int("spans", 0, "retain this many structured transaction spans (enables span tracing and the /trace endpoints; 0: disabled)")
		ringCap  = flag.Int("trace-ring", 0, "retain this many protocol trace lines in memory (0: disabled)")
		callAddr = flag.String("call", "", "client mode: send the remaining arguments as one command to this control address")
		lanes    = flag.Int("lanes", 0, "key-sharded execution lanes for this site (0/1: classic single event loop)")
		fsync    = flag.Bool("fsync", false, "with -data: make every site event durable before its outputs leave the site (per-event fsync with lanes off, group commit with lanes on)")
		gcWindow = flag.Duration("group-commit-window", 0, "group-commit accumulation window with -fsync (0: flush as soon as the flusher is free)")
		diskFlts = flag.String("disk-faults", "", "initial disk-fault plan for the WAL filesystem, ';'-separated storage commands (e.g. 'fsync p=0.01 once; slow p=0.2 min=1ms max=10ms'); needs -data")
		diskSd   = flag.Int64("disk-fault-seed", 1, "PRNG seed for the disk-fault injector (same seed, same fault decisions)")
	)
	flag.Parse()

	if *callAddr != "" {
		os.Exit(runClient(*callAddr, strings.Join(flag.Args(), " ")))
	}
	if *site == "" || *peersArg == "" || *control == "" {
		fmt.Fprintln(os.Stderr, "polynode: -site, -peers and -control are required (or -call for client mode)")
		flag.Usage()
		os.Exit(2)
	}
	peers, err := parsePeers(*peersArg)
	if err != nil {
		fatal("%v", err)
	}
	self := protocol.SiteID(*site)
	if _, ok := peers[self]; !ok {
		fatal("site %s has no -peers entry", self)
	}
	// Membership order must agree across processes: sorted site IDs.
	sites := make([]protocol.SiteID, 0, len(peers))
	for id := range peers {
		sites = append(sites, id)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })

	reg := metrics.NewRegistry()
	// Observability instruments are pay-for-use: a nil span log or ring
	// keeps every tracing branch in the hot path disabled.
	var spans *trace.SpanLog
	if *spansCap > 0 {
		spans = trace.NewSpanLogFor(*site, *spansCap)
		spans.Instrument(reg)
	}
	var ring *trace.Ring
	if *ringCap > 0 {
		ring = trace.NewRing(*ringCap)
		ring.Instrument(reg)
	}
	fab, err := transport.NewTCP(transport.TCPConfig{
		Self:    self,
		Peers:   peers,
		Listen:  *listen,
		Metrics: reg,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "polynode[%s] transport: %s\n", self, fmt.Sprintf(format, args...))
		},
	})
	if err != nil {
		fatal("%v", err)
	}
	// The fault plane sits between the cluster and the wire; with no
	// rules it forwards untouched.
	inj := fault.Wrap(fab, fault.Config{
		Self:    self,
		Seed:    *faultSd,
		Metrics: reg,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "polynode[%s] %s\n", self, fmt.Sprintf(format, args...))
		},
	})
	if *faults != "" {
		if err := inj.ApplyPlan(*faults); err != nil {
			fatal("-faults: %v", err)
		}
	}
	placement, err := parsePlacement(*place, peers)
	if err != nil {
		fatal("%v", err)
	}
	// With -heartbeat the failure detector sits on top of the fault
	// plane: heartbeats cross the injector like any other traffic, so a
	// partition makes peers suspect and trips the circuit breaker.
	var fabric transport.Transport = inj
	var det *guard.Detector
	if *hbeat > 0 {
		det = guard.NewDetector(inj, guard.DetectorConfig{
			Self:     self,
			Peers:    sites,
			Interval: *hbeat,
			Metrics:  reg,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "polynode[%s] detector: %s\n", self, fmt.Sprintf(format, args...))
			},
		})
		fabric = det
	}
	var plane cluster.DecisionPlane
	policy := cluster.PolicyPolyvalue
	switch *planeArg {
	case "", "wal":
		plane = cluster.PlaneWAL
	case "paxos":
		plane = cluster.PlanePaxos
	case "blocking2pc":
		plane = cluster.PlaneWAL
		policy = cluster.PolicyBlocking
	default:
		fatal("unknown -decision-plane %q (want wal, paxos, or blocking2pc)", *planeArg)
	}
	// The disk-fault plane sits under the WAL the same way the fault
	// injector sits under the wire: with no rules it forwards untouched.
	// It only exists with -data (there is no disk path without a WAL).
	var disk *storage.FaultFS
	if *dataDir != "" {
		disk = storage.NewFaultFS(storage.OSFS, storage.FaultFSConfig{
			Seed:    *diskSd,
			Metrics: reg,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "polynode[%s] %s\n", self, fmt.Sprintf(format, args...))
			},
		})
		if *diskFlts != "" {
			if err := disk.ApplyPlan(*diskFlts); err != nil {
				fatal("-disk-faults: %v", err)
			}
		}
	} else if *diskFlts != "" {
		fatal("-disk-faults needs -data (there is no WAL to inject against)")
	}
	cfg := cluster.Config{
		Sites:             sites,
		DecisionPlane:     plane,
		Policy:            policy,
		WaitTimeout:       *waitT,
		RetryInterval:     *retryT,
		AdmissionLimit:    *admit,
		TxnDeadline:       *txnDl,
		MaxPolyBudget:     *polyBdg,
		MaxDepBudget:      *depBdg,
		Metrics:           reg,
		Placement:         placement,
		DataDir:           *dataDir,
		Spans:             spans,
		Lanes:             *lanes,
		SyncWAL:           *fsync,
		GroupCommitWindow: *gcWindow,
	}
	if disk != nil {
		cfg.DiskFS = disk
	}
	if ring != nil {
		cfg.Tracer = ring
	}
	if *replicas > 0 {
		w := *wquorum
		if w == 0 {
			w = *replicas/2 + 1
		}
		r := *rquorum
		if r == 0 {
			r = *replicas + 1 - w
		}
		cfg.Replication = &cluster.ReplicationConfig{K: *replicas, W: w, R: r}
	}
	if det != nil {
		// Detector-informed gossip: anti-entropy rounds skip peers the
		// failure detector currently suspects, spending each round on a
		// peer likely to answer.
		cfg.Suspected = det.Suspected
	}
	node, err := cluster.NewNode(cfg, self, fabric)
	if err != nil {
		fatal("%v", err)
	}

	ctl, err := net.Listen("tcp", *control)
	if err != nil {
		fatal("control listen %s: %v", *control, err)
	}
	srv := &server{self: self, node: node, fab: fab, inj: inj, disk: disk, spans: spans, ring: ring}
	if det, ok := fabric.(*guard.Detector); ok {
		srv.det = det
	}
	go srv.serve(ctl)
	var tel *telemetry.Server
	if *telAddr != "" {
		tel, err = telemetry.Serve(*telAddr, telemetry.Config{
			Registry: reg,
			Spans:    spans,
			Ring:     ring,
			Health:   srv.health,
		})
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("polynode[%s] telemetry=http://%s\n", self, tel.Addr)
	}
	fmt.Printf("polynode[%s] transport=%s control=%s peers=%d\n",
		self, fab.Addr(), ctl.Addr(), len(peers)-1)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	ctl.Close()
	if tel != nil {
		tel.Close()
	}
	node.Close() // closes fab and the WAL
	if *stats {
		st := node.Stats()
		fmt.Printf("polynode[%s] cluster: committed=%d aborted=%d in_doubt=%d poly_installs=%d poly_reductions=%d\n",
			self, st.Committed, st.Aborted, st.InDoubt, st.PolyInstalls, st.PolyReductions)
		fmt.Printf("polynode[%s] transport:\n%s", self, fab.Stats().Format())
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "polynode: %s\n", fmt.Sprintf(format, args...))
	os.Exit(1)
}

// parsePeers parses "A=host:port,B=host:port" into a peer map.
func parsePeers(s string) (map[protocol.SiteID]string, error) {
	peers := map[protocol.SiteID]string{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want site=host:port)", part)
		}
		peers[protocol.SiteID(id)] = addr
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("-peers is empty")
	}
	return peers, nil
}

// parsePlacement builds a placement override from "item=site,..." pins;
// nil (cluster default FNV hashing) when s is empty.  Pinned items fall
// back to hashing if they name an unknown site — but that is rejected
// here, at flag-parse time.
func parsePlacement(s string, peers map[protocol.SiteID]string) (func(string) protocol.SiteID, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	pins := map[string]protocol.SiteID{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		item, site, ok := strings.Cut(part, "=")
		if !ok || item == "" || site == "" {
			return nil, fmt.Errorf("bad -place entry %q (want item=site)", part)
		}
		id := protocol.SiteID(site)
		if _, known := peers[id]; !known {
			return nil, fmt.Errorf("-place pins %q to unknown site %q", item, site)
		}
		pins[item] = id
	}
	// Deterministic fallback identical to the cluster default: FNV over
	// the sorted membership.
	sites := make([]protocol.SiteID, 0, len(peers))
	for id := range peers {
		sites = append(sites, id)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	return func(item string) protocol.SiteID {
		if id, ok := pins[item]; ok {
			return id
		}
		h := fnv.New32a()
		h.Write([]byte(item))
		return sites[int(h.Sum32())%len(sites)]
	}, nil
}

// ---------------------------------------------------------------------
// Control server
// ---------------------------------------------------------------------

type server struct {
	self  protocol.SiteID
	node  *cluster.Cluster
	fab   *transport.TCP
	inj   *fault.Injector
	disk  *storage.FaultFS // nil unless -data was given
	det   *guard.Detector  // nil unless -heartbeat was given
	spans *trace.SpanLog   // nil unless -spans was given
	ring  *trace.Ring      // nil unless -trace-ring was given
}

// health feeds the /healthz app section; it also refreshes the trace
// occupancy gauges so every scrape sees current levels.
func (s *server) health() any {
	s.refreshTraceGauges()
	st := s.node.Stats()
	doc := map[string]any{
		"site":      string(s.self),
		"committed": st.Committed,
		"aborted":   st.Aborted,
		"in_doubt":  st.InDoubt,
	}
	if s.det != nil {
		suspects := s.det.Suspects()
		sort.Slice(suspects, func(i, j int) bool { return suspects[i] < suspects[j] })
		names := make([]string, len(suspects))
		for i, id := range suspects {
			names[i] = string(id)
		}
		doc["suspects"] = names
	}
	return doc
}

// refreshTraceGauges re-publishes the span-log and ring occupancy
// gauges; both Instrument calls are idempotent level refreshes.
func (s *server) refreshTraceGauges() {
	reg := s.node.Metrics()
	if s.spans != nil {
		s.spans.Instrument(reg)
	}
	if s.ring != nil {
		s.ring.Instrument(reg)
	}
}

func (s *server) serve(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go s.session(conn)
	}
}

// controlIdleTimeout bounds how long a control session may sit silent
// between lines; the deadline refreshes per command, so an interactive
// session stays up as long as it keeps talking.
const controlIdleTimeout = 5 * time.Minute

// controlMaxLine bounds one control command; a client exceeding it (or
// going silent past the idle timeout) has its session closed rather
// than holding memory or a goroutine hostage.
const controlMaxLine = 64 << 10

func (s *server) session(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 4096), controlMaxLine)
	w := bufio.NewWriter(conn)
	for {
		conn.SetReadDeadline(time.Now().Add(controlIdleTimeout))
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		for _, out := range s.execute(line) {
			fmt.Fprintln(w, out)
		}
		w.Flush()
	}
}

// execute runs one command; the last returned line starts "OK" or "ERR".
func (s *server) execute(line string) []string {
	cmd, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch strings.ToUpper(cmd) {
	case "PING":
		return []string{"OK pong " + string(s.self)}
	case "OWNER":
		if rest == "" {
			return []string{"ERR usage: OWNER <item>"}
		}
		return []string{"OK " + string(s.node.Placement(rest))}
	case "LOAD":
		item, num, ok := strings.Cut(rest, " ")
		if !ok {
			return []string{"ERR usage: LOAD <item> <int>"}
		}
		n, err := strconv.ParseInt(strings.TrimSpace(num), 10, 64)
		if err != nil {
			return []string{"ERR bad int: " + err.Error()}
		}
		// With -replicas this loads the replicas this process hosts (send
		// the same LOAD to every node); without, it is owner-only.
		if err := s.node.LoadReplicated(item, polyvalue.Simple(value.Int(n))); err != nil {
			return []string{"ERR " + err.Error()}
		}
		return []string{"OK loaded"}
	case "READ":
		if rest == "" {
			return []string{"ERR usage: READ <item>"}
		}
		if !s.node.Local(rest) {
			return []string{"ERR item " + rest + " is at remote site " + string(s.node.Placement(rest))}
		}
		return []string{"OK " + formatPoly(s.node.Read(rest))}
	case "POLY":
		items := s.node.PolyItems()
		return []string{fmt.Sprintf("OK %d %s", len(items), strings.Join(items, " "))}
	case "SUBMIT":
		if rest == "" {
			return []string{"ERR usage: SUBMIT <program>"}
		}
		h, err := s.node.Submit(s.self, rest)
		if err != nil {
			return []string{"ERR " + err.Error()}
		}
		st, done := h.Wait(15 * time.Second)
		if !done {
			return []string{"ERR timeout; transaction " + string(h.TID) + " still " + st.String()}
		}
		if st == cluster.StatusAborted {
			return []string{fmt.Sprintf("OK aborted %s reason=%q", h.TID, h.Reason())}
		}
		return []string{"OK committed " + string(h.TID)}
	case "ASYNC":
		if rest == "" {
			return []string{"ERR usage: ASYNC <program>"}
		}
		h, err := s.node.Submit(s.self, rest)
		if err != nil {
			return []string{"ERR " + err.Error()}
		}
		return []string{"OK submitted " + string(h.TID)}
	case "QUERY":
		if rest == "" {
			return []string{"ERR usage: QUERY <expr>"}
		}
		qh, err := s.node.Query(s.self, rest)
		if err != nil {
			return []string{"ERR " + err.Error()}
		}
		p, qerr, done := qh.Wait(15 * time.Second)
		if !done {
			return []string{"ERR query timeout"}
		}
		if qerr != nil {
			return []string{"ERR " + qerr.Error()}
		}
		return []string{"OK " + formatPoly(p)}
	case "ARMCRASH":
		point := cluster.CrashBeforeDecision
		if rest != "" {
			point = cluster.CrashPoint(rest)
		}
		if err := s.node.ArmCrash(s.self, point); err != nil {
			return []string{"ERR " + err.Error()}
		}
		return []string{"OK armed " + string(point)}
	case "CRASHPOINTS":
		var out []string
		for _, p := range cluster.CrashPoints() {
			out = append(out, "| "+string(p))
		}
		return append(out, "OK")
	case "FAULT":
		if rest == "" {
			return []string{"ERR usage: FAULT <cmd> (drop|dup|delay|corrupt|reset|partition|heal|seed|status|clear)"}
		}
		msg, err := s.inj.Apply(rest)
		if err != nil {
			return []string{"ERR " + err.Error()}
		}
		var out []string
		for _, l := range strings.Split(strings.TrimRight(msg, "\n"), "\n") {
			out = append(out, "| "+l)
		}
		return append(out, "OK")
	case "DISKFAULT":
		if s.disk == nil {
			return []string{"ERR disk-fault plane disabled (start with -data)"}
		}
		if rest == "" {
			return []string{"ERR usage: DISKFAULT <cmd> (fsync|torn|enospc|readflip|slow|seed|status|clear)"}
		}
		msg, err := s.disk.Apply(rest)
		if err != nil {
			return []string{"ERR " + err.Error()}
		}
		var out []string
		for _, l := range strings.Split(strings.TrimRight(msg, "\n"), "\n") {
			out = append(out, "| "+l)
		}
		return append(out, "OK")
	case "SPANS":
		if s.spans == nil {
			return []string{"ERR span tracing disabled (start with -spans N)"}
		}
		raw, err := json.Marshal(s.spans.Spans())
		if err != nil {
			return []string{"ERR " + err.Error()}
		}
		return []string{"| " + string(raw), "OK"}
	case "STATS":
		s.refreshTraceGauges()
		st := s.node.Stats()
		out := []string{
			fmt.Sprintf("| committed=%d aborted=%d in_doubt=%d poly_installs=%d poly_reductions=%d refused=%d",
				st.Committed, st.Aborted, st.InDoubt, st.PolyInstalls, st.PolyReductions, st.Refused),
		}
		if s.spans != nil || s.ring != nil {
			line := "| trace:"
			if s.spans != nil {
				line += fmt.Sprintf(" spans=%d span_dropped=%d", s.spans.Len(), s.spans.Dropped())
			}
			if s.ring != nil {
				line += fmt.Sprintf(" ring=%d ring_dropped=%d", len(s.ring.Entries()), s.ring.Dropped())
			}
			out = append(out, line)
		}
		if s.det != nil {
			suspects := s.det.Suspects()
			sort.Slice(suspects, func(i, j int) bool { return suspects[i] < suspects[j] })
			parts := make([]string, len(suspects))
			for i, id := range suspects {
				parts[i] = string(id)
			}
			out = append(out, fmt.Sprintf("| detector suspects=%d [%s]", len(suspects), strings.Join(parts, " ")))
		}
		for _, l := range strings.Split(strings.TrimRight(s.fab.Stats().Format(), "\n"), "\n") {
			out = append(out, "| "+l)
		}
		return append(out, "OK")
	default:
		return []string{"ERR unknown command " + cmd}
	}
}

// formatPoly renders a value as "certain <v>" or "poly <p>".
func formatPoly(p polyvalue.Poly) string {
	if v, ok := p.IsCertain(); ok {
		return "certain " + v.String()
	}
	return "poly " + p.String()
}

// ---------------------------------------------------------------------
// Client mode
// ---------------------------------------------------------------------

// runClient sends one command and prints the response; exit status 0 on
// an OK-terminated response, 1 otherwise.
func runClient(addr, command string) int {
	if strings.TrimSpace(command) == "" {
		fmt.Fprintln(os.Stderr, "polynode -call: no command given")
		return 2
	}
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		fmt.Fprintf(os.Stderr, "polynode -call: %v\n", err)
		return 1
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	fmt.Fprintln(conn, command)
	sc := bufio.NewScanner(conn)
	// Span dumps (SPANS) come back as one long JSON line; allow 8 MiB.
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if strings.HasPrefix(line, "OK") {
			return 0
		}
		if strings.HasPrefix(line, "ERR") {
			return 1
		}
	}
	fmt.Fprintln(os.Stderr, "polynode -call: connection closed without a terminator")
	return 1
}
