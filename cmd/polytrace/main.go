// Command polytrace merges per-site span dumps into causal
// per-transaction timelines.  Each input file is a JSON array of spans
// (the format internal/trace.SpanLog marshals to, dumped by the chaos/
// overload harnesses and by polynode's STATS plumbing); polytrace
// groups them by transaction, nests children under the coordinator's
// root span, and flags every incomplete tree — a missing root, a
// dangling parent, or a participant site that contributed no spans is
// exactly the signature of a lost or unaccounted protocol step.
//
//	polytrace a.json b.json c.json            # all transactions, text
//	polytrace -txn T3 site-*.json             # one transaction
//	polytrace -json site-*.json > merged.json # machine-readable output
//	polytrace -incomplete site-*.json         # only the broken trees
//
// Exit status: 0 when every printed timeline is complete, 1 on any
// incomplete tree (or when -txn finds nothing), 2 on usage/read errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("polytrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		txn        = fs.String("txn", "", "only the timeline of this transaction ID")
		asJSON     = fs.Bool("json", false, "emit merged timelines as JSON instead of text")
		incomplete = fs.Bool("incomplete", false, "print only incomplete timelines")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: polytrace [flags] span-dump.json...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	var logs [][]trace.Span
	for _, path := range fs.Args() {
		raw, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "polytrace: %v\n", err)
			return 2
		}
		var spans []trace.Span
		if err := json.Unmarshal(raw, &spans); err != nil {
			fmt.Fprintf(stderr, "polytrace: %s: %v\n", path, err)
			return 2
		}
		logs = append(logs, spans)
	}

	timelines := trace.BuildTimelines(trace.Merge(logs...))
	if *txn != "" {
		var match []trace.Timeline
		for _, tl := range timelines {
			if tl.TID == *txn {
				match = append(match, tl)
			}
		}
		if len(match) == 0 {
			fmt.Fprintf(stderr, "polytrace: no spans for transaction %s\n", *txn)
			return 1
		}
		timelines = match
	}
	if *incomplete {
		var broken []trace.Timeline
		for _, tl := range timelines {
			if !tl.Complete {
				broken = append(broken, tl)
			}
		}
		timelines = broken
	}

	bad := 0
	for _, tl := range timelines {
		if !tl.Complete {
			bad++
		}
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(timelines); err != nil {
			fmt.Fprintf(stderr, "polytrace: %v\n", err)
			return 2
		}
	} else {
		if len(timelines) > 0 {
			fmt.Fprintln(stdout, trace.RenderTimelines(timelines))
		}
		fmt.Fprintf(stdout, "%d transactions, %d incomplete\n", len(timelines), bad)
	}
	if bad > 0 {
		return 1
	}
	return 0
}
