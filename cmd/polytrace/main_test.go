package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

// writeDump writes one site's span dump file.
func writeDump(t *testing.T, dir, name string, spans []trace.Span) string {
	t.Helper()
	raw, err := json.Marshal(spans)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// threeSiteDumps builds per-site dumps for one complete committed
// transaction (t1) and one incomplete one (t2, root missing).
func threeSiteDumps(t *testing.T, dir string) []string {
	t.Helper()
	a := []trace.Span{
		{ID: 1, Kind: trace.RootKind, TID: "t1", Site: "A", Start: 0, End: 100,
			Attrs: map[string]string{"status": "committed", "participants": "A,B"}},
		{ID: 2, Parent: 1, Kind: "phase.read", TID: "t1", Site: "A", Start: 0, End: 40},
		{ID: 5, Parent: 1, Kind: "part.compute", TID: "t1", Site: "A", Start: 41, End: 50},
	}
	b := []trace.Span{
		{ID: 3, Parent: 1, Kind: "part.compute", TID: "t1", Site: "B", Start: 45, End: 60},
		{ID: 4, Parent: 99, Kind: "part.wait", TID: "t2", Site: "B", Start: 70, End: 90},
	}
	return []string{
		writeDump(t, dir, "site-A.json", a),
		writeDump(t, dir, "site-B.json", b),
	}
}

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestMergeRendersTimelines(t *testing.T) {
	files := threeSiteDumps(t, t.TempDir())
	code, out, _ := runCmd(t, files...)
	if code != 1 {
		t.Errorf("exit = %d, want 1 (t2 is incomplete)", code)
	}
	for _, want := range []string{"txn t1 [committed]", "part.compute", "45ns → 60ns",
		"txn t2", "INCOMPLETE", "2 transactions, 1 incomplete"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestTxnFilter(t *testing.T) {
	files := threeSiteDumps(t, t.TempDir())
	code, out, _ := runCmd(t, append([]string{"-txn", "t1"}, files...)...)
	if code != 0 {
		t.Errorf("exit = %d, want 0 (t1 is complete)", code)
	}
	if strings.Contains(out, "t2") {
		t.Errorf("filtered transaction leaked:\n%s", out)
	}
	code, _, errb := runCmd(t, append([]string{"-txn", "missing"}, files...)...)
	if code != 1 || !strings.Contains(errb, "no spans") {
		t.Errorf("missing txn: exit=%d stderr=%q", code, errb)
	}
}

func TestJSONOutput(t *testing.T) {
	files := threeSiteDumps(t, t.TempDir())
	_, out, _ := runCmd(t, append([]string{"-json"}, files...)...)
	var tls []trace.Timeline
	if err := json.Unmarshal([]byte(out), &tls); err != nil {
		t.Fatalf("output not JSON: %v\n%s", err, out)
	}
	if len(tls) != 2 || !tls[0].Complete || tls[1].Complete {
		t.Errorf("timelines = %+v", tls)
	}
	if len(tls[1].MissingParents) != 1 || tls[1].MissingParents[0] != 99 {
		t.Errorf("missing parents = %v", tls[1].MissingParents)
	}
}

func TestIncompleteFilter(t *testing.T) {
	files := threeSiteDumps(t, t.TempDir())
	code, out, _ := runCmd(t, append([]string{"-incomplete"}, files...)...)
	if code != 1 {
		t.Errorf("exit = %d", code)
	}
	if strings.Contains(out, "txn t1") || !strings.Contains(out, "txn t2") {
		t.Errorf("incomplete filter wrong:\n%s", out)
	}
}

func TestUsageAndReadErrors(t *testing.T) {
	if code, _, _ := runCmd(t); code != 2 {
		t.Errorf("no args: exit = %d", code)
	}
	if code, _, errb := runCmd(t, "/nonexistent/dump.json"); code != 2 || errb == "" {
		t.Errorf("missing file: exit = %d, stderr %q", code, errb)
	}
	bad := writeDump(t, t.TempDir(), "bad.json", nil)
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runCmd(t, bad); code != 2 {
		t.Errorf("bad json: exit = %d", code)
	}
}

// TestPaxosQuorumAudit: a committed paxos-plane transaction whose dumps
// show fewer distinct accept sites than the declared quorum is flagged
// incomplete with the quorum note; a full quorum renders clean.
func TestPaxosQuorumAudit(t *testing.T) {
	dir := t.TempDir()
	base := []trace.Span{
		{ID: 1, Kind: trace.RootKind, TID: "p1", Site: "A", Start: 0, End: 100,
			Attrs: map[string]string{"status": "committed", "participants": "A",
				"plane": "paxos", "quorum": "2"}},
		{ID: 2, Parent: 1, Kind: "paxos.accept", TID: "p1", Site: "A", Start: 10, End: 10},
	}
	thin := writeDump(t, dir, "thin-A.json", base)
	code, out, _ := runCmd(t, thin)
	if code != 1 || !strings.Contains(out, "accept quorum not visible") {
		t.Errorf("thin quorum: exit=%d out:\n%s", code, out)
	}
	full := writeDump(t, dir, "full-B.json", []trace.Span{
		{ID: 3, Parent: 1, Kind: "paxos.accept", TID: "p1", Site: "B", Start: 12, End: 12},
	})
	code, out, _ = runCmd(t, thin, full)
	if code != 0 || strings.Contains(out, "INCOMPLETE") {
		t.Errorf("full quorum: exit=%d out:\n%s", code, out)
	}
}
