// Command polyrepl is an interactive console over a polyvalue cluster:
// load data, submit transactions, crash sites at critical moments, watch
// polyvalues appear and resolve.  Type "help" for the command list.
//
// Usage:
//
//	polyrepl -sites 3 -policy polyvalue
//
// Example session:
//
//	load x 100
//	armcrash site0
//	submit site0 x = x - 40
//	run 2s
//	polys
//	expected x 0.9
//	restart site0
//	run 10s
//	read x
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/repl"
)

func main() {
	sites := flag.Int("sites", 3, "number of sites")
	policyName := flag.String("policy", "polyvalue", "wait-timeout policy: polyvalue, blocking or arbitrary")
	seed := flag.Int64("seed", 1, "network seed")
	flag.Parse()

	var policy cluster.Policy
	switch *policyName {
	case "polyvalue":
		policy = cluster.PolicyPolyvalue
	case "blocking":
		policy = cluster.PolicyBlocking
	case "arbitrary":
		policy = cluster.PolicyArbitrary
	default:
		fmt.Fprintf(os.Stderr, "polyrepl: unknown policy %q\n", *policyName)
		os.Exit(2)
	}
	r, err := repl.New(*sites, policy, *seed, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "polyrepl:", err)
		os.Exit(1)
	}
	defer r.Close()
	fmt.Printf("polyvalue cluster: %d sites, %s policy (type help)\n", *sites, policy)
	if err := r.Run(os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "polyrepl:", err)
		os.Exit(1)
	}
}
