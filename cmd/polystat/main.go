// Command polystat runs a failure workload against a live cluster and
// prints the full observability surface: per-phase protocol latencies,
// network message counts by type, polyvalue lifecycle (installs,
// reductions, population, lifetime distribution), WAL activity, and the
// settle-window diff showing what repair alone did.
//
// Usage:
//
//	polystat                              # default failure workload
//	polystat -sites 6 -txns 500 -crash-every 25
//	polystat -export                      # raw text exposition too
//	polystat -diff                        # settle-window diff export
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	polyvalues "repro"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "polystat:", err)
	os.Exit(1)
}

func main() {
	nSites := flag.Int("sites", 4, "number of sites")
	nTxns := flag.Int("txns", 200, "transactions to run")
	items := flag.Int("items", 64, "items in the database")
	kindName := flag.String("workload", "bank", "workload: bank, reservations or inventory")
	policyName := flag.String("policy", "polyvalue", "wait-timeout policy: polyvalue, blocking or arbitrary")
	seed := flag.Int64("seed", 1, "workload and network seed")
	crashEvery := flag.Int("crash-every", 0, "crash the coordinator of every k-th transaction mid-commit (0 = every fifth)")
	repairAfter := flag.Duration("repair-after", 3*time.Second, "simulated downtime before a crashed site restarts")
	gap := flag.Duration("gap", 100*time.Millisecond, "simulated time between submissions")
	settle := flag.Duration("settle", 30*time.Second, "simulated settle time after the last submission")
	export := flag.Bool("export", false, "print the raw text exposition of the final snapshot")
	diff := flag.Bool("diff", false, "print the settle-window diff (final snapshot minus pre-settle snapshot)")
	flag.Parse()

	var kind polyvalues.WorkloadKind
	switch *kindName {
	case "bank":
		kind = polyvalues.WorkloadBank
	case "reservations":
		kind = polyvalues.WorkloadReservations
	case "inventory":
		kind = polyvalues.WorkloadInventory
	default:
		fail(fmt.Errorf("unknown workload %q", *kindName))
	}
	var policy polyvalues.Policy
	switch *policyName {
	case "polyvalue":
		policy = polyvalues.PolicyPolyvalue
	case "blocking":
		policy = polyvalues.PolicyBlocking
	case "arbitrary":
		policy = polyvalues.PolicyArbitrary
	default:
		fail(fmt.Errorf("unknown policy %q", *policyName))
	}
	if *nSites < 2 || *nTxns < 4 || *items < 2 {
		fail(fmt.Errorf("need -sites >= 2, -txns >= 4, -items >= 2"))
	}
	if *crashEvery <= 0 {
		*crashEvery = *nTxns / 5
	}

	sites := make([]polyvalues.SiteID, *nSites)
	for i := range sites {
		sites[i] = polyvalues.SiteID(fmt.Sprintf("site%d", i))
	}
	c, err := polyvalues.NewCluster(polyvalues.ClusterConfig{
		Sites:  sites,
		Net:    polyvalues.NetConfig{Latency: 10 * time.Millisecond, Jitter: 5 * time.Millisecond, Seed: *seed},
		Policy: policy,
	})
	if err != nil {
		fail(err)
	}
	defer c.Close()

	gen, err := polyvalues.NewWorkload(polyvalues.WorkloadConfig{Kind: kind, Items: *items, Seed: *seed})
	if err != nil {
		fail(err)
	}
	for item, p := range gen.InitialState() {
		if err := c.Load(item, p); err != nil {
			fail(err)
		}
	}

	// Drive the failure workload: every k-th coordinator crashes at the
	// critical moment, crashed sites restart after -repair-after.
	repairAt := map[polyvalues.SiteID]time.Duration{}
	for i := 0; i < *nTxns; i++ {
		now := c.Now()
		for _, s := range sites {
			if c.IsDown(s) {
				if _, scheduled := repairAt[s]; !scheduled {
					repairAt[s] = now + *repairAfter
				}
			}
		}
		for s, at := range repairAt {
			if at <= now {
				c.Restart(s)
				delete(repairAt, s)
			}
		}
		coord := sites[i%len(sites)]
		if c.IsDown(coord) {
			for _, s := range sites {
				if !c.IsDown(s) {
					coord = s
					break
				}
			}
		}
		if i > 0 && i%*crashEvery == 0 && !c.IsDown(coord) {
			c.ArmCrashBeforeDecision(coord)
		}
		if _, err := c.Submit(coord, gen.Next()); err != nil {
			fail(err)
		}
		c.RunFor(*gap)
	}

	preSettle := c.Metrics().Snapshot()
	polysMid := len(c.PolyItems())
	for _, s := range sites {
		if c.IsDown(s) {
			c.Restart(s)
		}
	}
	c.RunFor(*settle)
	snap := c.Metrics().Snapshot()

	fmt.Printf("polystat: %d sites, %s workload over %d items, policy %s, coordinator crash every %d txns\n",
		*nSites, kind, *items, policy, *crashEvery)
	fmt.Printf("simulated time: %v (settle %v); polyvalued items before settle: %d, after: %d\n\n",
		c.Now(), *settle, polysMid, len(c.PolyItems()))

	fmt.Println("transactions")
	for _, name := range []string{"txn.submitted", "txn.committed", "txn.aborted", "txn.indoubt", "txn.refused"} {
		fmt.Printf("  %-28s %d\n", name, snap.Counter(name))
	}
	if p, ok := snap.Get("txn.latency.seconds"); ok && p.Count > 0 {
		fmt.Printf("  commit latency: %s\n", histLine(p.Count, p.Mean(), p.P50, p.P90, p.P99, p.Max))
	}

	fmt.Println("\nprotocol phases (simulated latency)")
	for _, phase := range []string{"read", "prepare", "wait", "settle"} {
		p, ok := snap.Get("protocol.phase.seconds", polyvalues.MetricsLabel{Key: "phase", Value: phase})
		if !ok || p.Count == 0 {
			fmt.Printf("  %-8s (no observations)\n", phase)
			continue
		}
		fmt.Printf("  %-8s %s\n", phase, histLine(p.Count, p.Mean(), p.P50, p.P90, p.P99, p.Max))
	}
	printPrefixed(snap, "protocol.coordinator.decisions", "\ncoordinator decisions")

	fmt.Println("\nnetwork messages by type")
	fmt.Printf("  %-14s %8s %10s\n", "type", "sent", "delivered")
	for _, p := range snap.Points {
		if p.Name != "network.sent" {
			continue
		}
		var typ string
		for _, l := range p.Labels {
			if l.Key == "type" {
				typ = l.Value
			}
		}
		fmt.Printf("  %-14s %8d %10d\n", typ, p.Value,
			snap.Counter("network.delivered", polyvalues.MetricsLabel{Key: "type", Value: typ}))
	}
	printPrefixed(snap, "network.dropped", "dropped")

	fmt.Println("\npolyvalue lifecycle")
	fmt.Printf("  installs %d  reductions %d  forks %d  live %d\n",
		snap.Counter("poly.installs"), snap.Counter("poly.reductions"),
		snap.Counter("poly.forks"), snap.Counter("poly.population"))
	if p, ok := snap.Get("poly.lifetime.seconds"); ok && p.Count > 0 {
		fmt.Printf("  lifetime: %s\n", histLine(p.Count, p.Mean(), p.P50, p.P90, p.P99, p.Max))
	} else {
		fmt.Println("  lifetime: (no polyvalue was installed and reduced)")
	}

	var appends, bytes int64
	for _, p := range snap.Points {
		switch p.Name {
		case "storage.wal.appends":
			appends += p.Value
		case "storage.wal.bytes":
			bytes += p.Value
		}
	}
	fmt.Printf("\nstorage: %d WAL appends, %d bytes across %d sites\n", appends, bytes, *nSites)

	if *diff {
		fmt.Println("\nsettle-window diff (what repair alone did):")
		fmt.Print(snap.Diff(preSettle).Export())
	}
	if *export {
		fmt.Println("\nfull exposition:")
		fmt.Print(snap.Export())
	}
}

// histLine renders a histogram point compactly in milliseconds.
func histLine(count int64, mean, p50, p90, p99, max float64) string {
	ms := func(s float64) string { return fmt.Sprintf("%.1fms", s*1e3) }
	return fmt.Sprintf("count %d  mean %s  p50 %s  p90 %s  p99 %s  max %s",
		count, ms(mean), ms(p50), ms(p90), ms(p99), ms(max))
}

// printPrefixed lists every counter series with the given name under a
// header (skipped entirely when none exist).
func printPrefixed(snap polyvalues.MetricsSnapshot, name, header string) {
	first := true
	for _, p := range snap.Points {
		if p.Name != name {
			continue
		}
		if first {
			fmt.Println(header)
			first = false
		}
		fmt.Printf("  %-40s %d\n", p.Key(), p.Value)
	}
}
