// Command polybench is the repeatable throughput harness: a seeded,
// closed-loop load generator over internal/workload that drives a real
// TCP cluster — either N nodes inside this process (-mode inproc) or N
// child OS processes speaking the wire protocol (-mode procs) — and
// reports commit throughput and client-observed latency percentiles.
//
//	polybench -mode inproc -sites 3 -workers 16 -txns 2000 -seed 7
//	polybench -mode procs  -sites 3 -txns 500 -out BENCH_head.json
//	polybench -batch=false ...            # disable transport coalescing
//	polybench -compare bench_baseline.json ...   # CI regression gate
//	polybench -workload overload -admission 4    # admission-gated run
//	polybench -durable -lanes 16 -group-commit-window 1ms ...
//	                  # synchronous WAL durability on temp dirs, with
//	                  # key-sharded execution lanes + group commit
//	                  # (scripts/bench_scaling.sh runs the gated matrix)
//
// The overload workload is the bank mix pushed through admission-gated
// sites: workers outnumber the per-site in-flight credit cap, so a
// fraction of submission attempts is shed with ErrOverload.  Workers
// retry a shed transaction after a short backoff (the shed response is
// immediate, so the client, not the site, pays for the overload), and
// the run reports shed events and the attempt-level shed rate alongside
// the usual latency percentiles; the conservation audit still holds
// because a shed attempt never starts.
//
// Every run appends one named "setting" to a machine-readable BENCH
// JSON file (schema documented in DESIGN.md §9); -compare then fails
// the process if this run's committed-transaction throughput fell more
// than -regress (default 30%) below the same-named setting in the
// baseline file.  The workload is deterministic for a seed: the same
// flag set replays the identical transaction programs, so two runs
// differ only by scheduling and the knob under test (e.g. -batch).
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/expr"
	"repro/internal/metrics"
	"repro/internal/polyvalue"
	"repro/internal/protocol"
	"repro/internal/replica"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/value"
	"repro/internal/workload"
)

// options carries every knob; the child process receives the same set
// re-encoded as flags so workload generation agrees byte-for-byte.
type options struct {
	mode     string
	sites    int
	txns     int
	workers  int
	seed     int64
	kind     string
	items    int
	batch    bool
	batchMax int
	batchLng time.Duration
	label    string
	out      string
	compare  string
	regress  float64
	waitTxn  time.Duration
	settle   time.Duration
	admit    int
	deadline time.Duration
	plane    string
	replicas int
	wquorum  int
	rquorum  int
	childArg bool
	siteArg  string
	verbose  bool
	profile  string
	gogc     int
	telAddr  string
	spansN   int
	lanes    int
	durable  bool
	gcWindow time.Duration
	diskFlts string
	diskSd   int64
}

func main() {
	var opt options
	flag.StringVar(&opt.mode, "mode", "inproc", "cluster shape: inproc (N nodes, one process) or procs (N child processes)")
	flag.IntVar(&opt.sites, "sites", 3, "number of sites")
	flag.IntVar(&opt.txns, "txns", 2000, "total transactions to run")
	flag.IntVar(&opt.workers, "workers", 16, "concurrent closed-loop clients")
	flag.Int64Var(&opt.seed, "seed", 1, "workload seed (same seed, same programs)")
	flag.StringVar(&opt.kind, "workload", "bank", "workload kind: bank, reservations, inventory, overload (bank + admission gate)")
	flag.IntVar(&opt.items, "items", 64, "distinct items (accounts/flights/SKUs)")
	flag.BoolVar(&opt.batch, "batch", true, "transport message coalescing (false: one frame per message)")
	flag.IntVar(&opt.batchMax, "batch-max", 0, "messages per frame cap when batching (0: transport default)")
	flag.DurationVar(&opt.batchLng, "batch-delay", 0, "writer linger when batching (0: transport default)")
	flag.StringVar(&opt.label, "label", "", "setting name in the BENCH file (default derived from flags)")
	flag.StringVar(&opt.out, "out", "", "BENCH JSON path; existing settings are merged by name (default BENCH_<rev>.json)")
	flag.StringVar(&opt.compare, "compare", "", "baseline BENCH JSON; exit 1 on throughput regression")
	flag.Float64Var(&opt.regress, "regress", 0.30, "allowed fractional throughput drop vs baseline before failing")
	flag.DurationVar(&opt.waitTxn, "txn-timeout", 15*time.Second, "per-transaction client wait bound")
	flag.DurationVar(&opt.settle, "settle", 15*time.Second, "post-run bound for polyvalues to drain before the audit")
	flag.IntVar(&opt.admit, "admission", 0, "per-site in-flight transaction cap; over it submissions shed (0: unlimited, overload workload defaults to 4)")
	flag.DurationVar(&opt.deadline, "txn-deadline", 0, "end-to-end transaction deadline enforced by the cluster (0: none)")
	flag.StringVar(&opt.plane, "decision-plane", "wal", "commit decision plane: wal (coordinator log + polyvalues), paxos (replicated Paxos Commit), blocking2pc (coordinator log + blocking participants)")
	flag.IntVar(&opt.replicas, "replicas", 0, "store every item on this many sites under write-quorum/read-quorum replication (0: unreplicated; inproc mode only)")
	flag.IntVar(&opt.wquorum, "write-quorum", 0, "replicas a commit must write (default majority of -replicas)")
	flag.IntVar(&opt.rquorum, "read-quorum", 0, "replicas a read must reach (default replicas+1-write-quorum)")
	flag.BoolVar(&opt.childArg, "child", false, "internal: run as one site of a procs-mode cluster")
	flag.StringVar(&opt.siteArg, "site", "", "internal: site ID for -child")
	flag.BoolVar(&opt.verbose, "v", false, "log progress to stderr")
	flag.StringVar(&opt.profile, "cpuprofile", "", "write a CPU profile of the load phase (inproc mode)")
	flag.StringVar(&opt.telAddr, "telemetry", "", "serve /metrics, /healthz, /trace and pprof on this address during the run (inproc mode)")
	flag.IntVar(&opt.spansN, "spans", 0, "per-run structured span retention; enables span tracing on every site so the overhead shows up in the numbers (0: disabled)")
	flag.IntVar(&opt.gogc, "gogc", 400, "GC target percentage for every process (0: leave the runtime default); throughput runs are allocation-heavy and the default 100 spends a fifth of CPU in mark assists")
	flag.IntVar(&opt.lanes, "lanes", 0, "key-sharded execution lanes per site (0/1: classic single event loop)")
	flag.BoolVar(&opt.durable, "durable", false, "run every node on a temp WAL dir with synchronous durability: each site event fsyncs (lanes off) or group-commits (lanes on) before its outputs leave the site")
	flag.DurationVar(&opt.gcWindow, "group-commit-window", 0, "group-commit accumulation window with -durable (0: flush as soon as the flusher is free)")
	flag.StringVar(&opt.diskFlts, "disk-faults", "", "disk-fault plan applied to every site's WAL filesystem (storage plan grammar, e.g. 'slow p=0.1 min=1ms max=5ms'); needs -durable")
	flag.Int64Var(&opt.diskSd, "disk-fault-seed", 1, "base PRNG seed for the per-site disk-fault injectors")
	flag.Parse()
	if opt.gogc > 0 {
		debug.SetGCPercent(opt.gogc)
	}

	if opt.childArg {
		if err := runChild(opt); err != nil {
			fmt.Fprintf(os.Stderr, "polybench child %s: %v\n", opt.siteArg, err)
			os.Exit(1)
		}
		return
	}
	if err := run(opt); err != nil {
		fmt.Fprintf(os.Stderr, "polybench: %v\n", err)
		os.Exit(1)
	}
}

func run(opt options) error {
	if opt.sites < 1 {
		return fmt.Errorf("-sites must be >= 1")
	}
	if opt.workers < 1 {
		opt.workers = 1
	}
	if _, _, err := planeConfig(opt); err != nil {
		return err
	}
	if _, err := workloadConfig(opt); err != nil {
		return err
	}
	if opt.kind == "overload" && opt.admit == 0 {
		opt.admit = 4
	}
	if opt.diskFlts != "" {
		if !opt.durable {
			return fmt.Errorf("-disk-faults requires -durable (there is no WAL filesystem to inject against)")
		}
		// Validate the plan up front on a throwaway injector so a typo
		// fails before any node boots.
		if err := storage.NewFaultFS(nil, storage.FaultFSConfig{}).ApplyPlan(opt.diskFlts); err != nil {
			return fmt.Errorf("-disk-faults: %w", err)
		}
	}
	if opt.replicas > 0 {
		if opt.mode != "inproc" {
			return fmt.Errorf("-replicas requires -mode inproc (the procs-mode audit protocol is per-site)")
		}
		if opt.wquorum == 0 {
			opt.wquorum = opt.replicas/2 + 1
		}
		if opt.rquorum == 0 {
			opt.rquorum = opt.replicas + 1 - opt.wquorum
		}
	}
	if opt.label == "" {
		b := "batched"
		if !opt.batch {
			b = "unbatched"
		}
		opt.label = fmt.Sprintf("%s-%s-%dsite-%s", opt.kind, opt.mode, opt.sites, b)
		if opt.plane != "wal" {
			// Each decision plane is its own setting; never compare a
			// paxos or blocking run against the wal baseline.
			opt.label += "-" + opt.plane
		}
		if opt.spansN > 0 {
			// Traced runs get their own setting so the tracing-off
			// baseline is never compared against tracing-on numbers.
			opt.label += "-traced"
		}
		if opt.replicas > 0 {
			// Replicated runs do K× the write work per commit; never
			// compare them against the unreplicated baseline.
			opt.label += fmt.Sprintf("-k%dw%dr%d", opt.replicas, opt.wquorum, opt.rquorum)
		}
		if opt.durable {
			// Durable runs pay an fsync bound the in-memory baseline
			// doesn't; they are their own settings.
			opt.label += "-durable"
		}
		if opt.lanes > 1 {
			opt.label += fmt.Sprintf("-lanes%d", opt.lanes)
		}
		if opt.diskFlts != "" {
			// Disk-faulted runs measure degraded-mode throughput; never
			// compare them against a healthy-disk baseline.
			opt.label += "-diskfaulty"
		}
	}

	var (
		res *runResult
		err error
	)
	switch opt.mode {
	case "inproc":
		res, err = runInproc(opt)
	case "procs":
		res, err = runProcs(opt)
	default:
		return fmt.Errorf("unknown -mode %q (want inproc or procs)", opt.mode)
	}
	if err != nil {
		return err
	}

	s := res.setting(opt)
	printSetting(os.Stdout, s)
	if res.auditErr != nil {
		return fmt.Errorf("audit failed: %w", res.auditErr)
	}

	out := opt.out
	if out == "" {
		out = "BENCH_" + gitRev() + ".json"
	}
	if err := writeBench(out, s); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)

	if opt.compare != "" {
		return compareBaseline(opt.compare, s, opt.regress)
	}
	return nil
}

// ---------------------------------------------------------------------
// Workload plumbing
// ---------------------------------------------------------------------

func workloadConfig(opt options) (workload.Config, error) {
	cfg := workload.Config{Items: opt.items, Seed: opt.seed}
	switch opt.kind {
	case "bank", "overload": // overload = bank mix through admission-gated sites
		cfg.Kind = workload.Bank
	case "reservations":
		cfg.Kind = workload.Reservations
	case "inventory":
		cfg.Kind = workload.Inventory
	default:
		return cfg, fmt.Errorf("unknown -workload %q", opt.kind)
	}
	return cfg, nil
}

// planeConfig maps -decision-plane onto cluster knobs: the decision
// plane proper plus the participant wait policy (blocking2pc is the
// classic baseline — the wal plane with participants that hold their
// locks through coordinator outages instead of installing polyvalues).
// planeName canonicalizes the flag for labels and the BENCH schema.
func planeName(opt options) string {
	if opt.plane == "" {
		return "wal"
	}
	return opt.plane
}

func planeConfig(opt options) (cluster.DecisionPlane, cluster.Policy, error) {
	switch opt.plane {
	case "", "wal":
		return cluster.PlaneWAL, cluster.PolicyPolyvalue, nil
	case "paxos":
		return cluster.PlanePaxos, cluster.PolicyPolyvalue, nil
	case "blocking2pc":
		return cluster.PlaneWAL, cluster.PolicyBlocking, nil
	default:
		return "", 0, fmt.Errorf("unknown -decision-plane %q (want wal, paxos, or blocking2pc)", opt.plane)
	}
}

// programs pre-generates every transaction source: the Generator is not
// thread-safe, and a fixed list makes the run a pure function of flags.
func programs(opt options) ([]string, map[string]polyvalue.Poly, error) {
	wcfg, err := workloadConfig(opt)
	if err != nil {
		return nil, nil, err
	}
	gen, err := workload.New(wcfg)
	if err != nil {
		return nil, nil, err
	}
	init := gen.InitialState()
	progs := make([]string, opt.txns)
	for i := range progs {
		progs[i] = gen.Next()
	}
	return progs, init, nil
}

func siteNames(n int) []protocol.SiteID {
	out := make([]protocol.SiteID, n)
	for i := range out {
		out[i] = protocol.SiteID(fmt.Sprintf("s%d", i))
	}
	return out
}

func tcpConfig(self protocol.SiteID, peers map[protocol.SiteID]string, reg *metrics.Registry, opt options) transport.TCPConfig {
	cfg := transport.TCPConfig{Self: self, Peers: peers, Metrics: reg, QueueDepth: 1024}
	if !opt.batch {
		cfg.BatchMax = 1
		cfg.BatchDelay = -1 // no linger: flush every message immediately
		return cfg
	}
	cfg.BatchMax = opt.batchMax
	cfg.BatchDelay = opt.batchLng
	return cfg
}

// ---------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------

type runResult struct {
	duration  time.Duration
	latencies []time.Duration // committed+aborted only
	committed int
	aborted   int
	timeouts  int
	shed      int // submission attempts rejected by admission control
	flushes   int64
	batchN    int64   // messages observed by the batch-size histogram
	batchSum  float64 // sum of batch sizes (mean = batchSum/flush count)
	auditErr  error
}

type latencyMS struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
}

type batchStats struct {
	Flushes  int64   `json:"flushes"`
	MeanSize float64 `json:"mean_size"`
}

// replicationSetting records the quorum geometry of a replicated run
// (absent for unreplicated settings).
type replicationSetting struct {
	Replicas    int `json:"replicas"`
	WriteQuorum int `json:"write_quorum"`
	ReadQuorum  int `json:"read_quorum"`
}

type setting struct {
	Name            string  `json:"name"`
	Mode            string  `json:"mode"`
	Sites           int     `json:"sites"`
	Workers         int     `json:"workers"`
	Txns            int     `json:"txns"`
	Seed            int64   `json:"seed"`
	Workload        string  `json:"workload"`
	Items           int     `json:"items"`
	Batching        bool    `json:"batching"`
	DecisionPlane   string  `json:"decision_plane"`
	DurationSeconds float64 `json:"duration_seconds"`
	ThroughputTPS   float64 `json:"throughput_tps"`
	Committed       int     `json:"committed"`
	Aborted         int     `json:"aborted"`
	Timeouts        int     `json:"timeouts"`
	AdmissionLimit  int     `json:"admission_limit,omitempty"`
	Shed            int     `json:"shed,omitempty"`
	ShedRate        float64 `json:"shed_rate,omitempty"`

	// Lane / durability geometry (ISSUE 9): lanes-off durable runs pay a
	// serialized fsync per WAL-writing event, lanes-on runs share one
	// group-commit fsync per flush batch.  GOMAXPROCS records the
	// scheduler width the run actually had, for the scaling curve.
	Lanes               int     `json:"lanes,omitempty"`
	Durable             bool    `json:"durable,omitempty"`
	GroupCommitWindowMS float64 `json:"group_commit_window_ms,omitempty"`
	GOMAXPROCS          int     `json:"gomaxprocs,omitempty"`
	// DiskFaults records the -disk-faults plan the run's WAL filesystem
	// was injected with (ISSUE 10), so degraded-disk settings are
	// self-describing in the BENCH file.
	DiskFaults string `json:"disk_faults,omitempty"`

	Replication *replicationSetting `json:"replication,omitempty"`

	LatencyMS latencyMS  `json:"latency_ms"`
	Batch     batchStats `json:"batch"`
}

func (r *runResult) setting(opt options) setting {
	s := setting{
		Name: opt.label, Mode: opt.mode, Sites: opt.sites, Workers: opt.workers,
		Txns: opt.txns, Seed: opt.seed, Workload: opt.kind, Items: opt.items,
		Batching: opt.batch, DecisionPlane: planeName(opt),
		DurationSeconds: r.duration.Seconds(),
		Committed:       r.committed, Aborted: r.aborted, Timeouts: r.timeouts,
		AdmissionLimit: opt.admit, Shed: r.shed,
		Lanes: opt.lanes, Durable: opt.durable,
		GroupCommitWindowMS: float64(opt.gcWindow) / float64(time.Millisecond),
		GOMAXPROCS:          runtime.GOMAXPROCS(0),
		DiskFaults:          opt.diskFlts,
	}
	if opt.replicas > 0 {
		s.Replication = &replicationSetting{
			Replicas: opt.replicas, WriteQuorum: opt.wquorum, ReadQuorum: opt.rquorum,
		}
	}
	if attempts := r.shed + opt.txns; attempts > 0 {
		s.ShedRate = float64(r.shed) / float64(attempts)
	}
	if r.duration > 0 {
		s.ThroughputTPS = float64(r.committed) / r.duration.Seconds()
	}
	ls := append([]time.Duration(nil), r.latencies...)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	pct := func(q float64) float64 {
		if len(ls) == 0 {
			return 0
		}
		i := int(q * float64(len(ls)-1))
		return float64(ls[i]) / float64(time.Millisecond)
	}
	var sum time.Duration
	for _, d := range ls {
		sum += d
	}
	s.LatencyMS = latencyMS{P50: pct(0.5), P90: pct(0.9), P99: pct(0.99)}
	if len(ls) > 0 {
		s.LatencyMS.Mean = float64(sum) / float64(len(ls)) / float64(time.Millisecond)
	}
	s.Batch.Flushes = r.flushes
	if r.flushes > 0 {
		s.Batch.MeanSize = r.batchSum / float64(r.flushes)
	}
	return s
}

func printSetting(w *os.File, s setting) {
	fmt.Fprintf(w, "%s: %d txns in %.2fs — %.0f commits/s (%d committed, %d aborted, %d timeouts)\n",
		s.Name, s.Txns, s.DurationSeconds, s.ThroughputTPS, s.Committed, s.Aborted, s.Timeouts)
	if s.AdmissionLimit > 0 {
		fmt.Fprintf(w, "  admission=%d shed=%d shed_rate=%.1f%%\n", s.AdmissionLimit, s.Shed, s.ShedRate*100)
	}
	if s.Replication != nil {
		fmt.Fprintf(w, "  replication: k=%d write-quorum=%d read-quorum=%d\n",
			s.Replication.Replicas, s.Replication.WriteQuorum, s.Replication.ReadQuorum)
	}
	if s.Durable || s.Lanes > 1 {
		fmt.Fprintf(w, "  lanes=%d durable=%v group_commit_window_ms=%g gomaxprocs=%d\n",
			s.Lanes, s.Durable, s.GroupCommitWindowMS, s.GOMAXPROCS)
	}
	if s.DiskFaults != "" {
		fmt.Fprintf(w, "  disk_faults=%q\n", s.DiskFaults)
	}
	fmt.Fprintf(w, "  latency ms: p50=%.2f p90=%.2f p99=%.2f mean=%.2f\n",
		s.LatencyMS.P50, s.LatencyMS.P90, s.LatencyMS.P99, s.LatencyMS.Mean)
	fmt.Fprintf(w, "  batching=%v flushes=%d mean_batch=%.2f msgs/frame\n",
		s.Batching, s.Batch.Flushes, s.Batch.MeanSize)
}

// batchCounters reads the coalescing metrics the transports share.
func batchCounters(reg *metrics.Registry) (flushes, n int64, sum float64) {
	for _, reason := range []string{"count", "size", "delay", "drain"} {
		flushes += reg.Counter("transport.batch.flushes", metrics.L("reason", reason)).Value()
	}
	h := reg.Histogram("transport.batch.size")
	return flushes, int64(h.Count()), h.Sum()
}

// diskFaultFS builds one site's WAL-filesystem fault injector from the
// -disk-faults plan (nil when no plan was given).  Each site gets its
// own seeded rng so procs- and inproc-mode runs with the same flags
// make the same per-site fault decisions.
func diskFaultFS(opt options, id protocol.SiteID, reg *metrics.Registry) (*storage.FaultFS, error) {
	if opt.diskFlts == "" {
		return nil, nil
	}
	seed := opt.diskSd
	for _, r := range string(id) {
		seed = seed*31 + int64(r)
	}
	fs := storage.NewFaultFS(storage.OSFS, storage.FaultFSConfig{Seed: seed, Metrics: reg})
	if err := fs.ApplyPlan(opt.diskFlts); err != nil {
		return nil, fmt.Errorf("-disk-faults: %w", err)
	}
	return fs, nil
}

// ---------------------------------------------------------------------
// inproc mode: N nodes over loopback TCP inside this process
// ---------------------------------------------------------------------

func runInproc(opt options) (*runResult, error) {
	names := siteNames(opt.sites)
	lns := make([]net.Listener, opt.sites)
	peers := map[protocol.SiteID]string{}
	for i, id := range names {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		peers[id] = ln.Addr().String()
	}
	reg := metrics.NewRegistry()
	// One shared span log across all inproc sites: the cluster stamps
	// each span with its site, and the shared ID counter keeps span IDs
	// unique, so /trace sees whole-transaction timelines directly.
	var spans *trace.SpanLog
	if opt.spansN > 0 {
		spans = trace.NewSpanLogFor("inproc", opt.spansN)
	}
	nodes := make([]*cluster.Cluster, opt.sites)
	for i, id := range names {
		fab := transport.NewTCPWithListener(tcpConfig(id, peers, reg, opt), lns[i])
		plane, policy, err := planeConfig(opt)
		if err != nil {
			return nil, err
		}
		ncfg := cluster.Config{
			Sites: names, Metrics: reg, Spans: spans,
			AdmissionLimit: opt.admit, TxnDeadline: opt.deadline,
			DecisionPlane: plane, Policy: policy,
			Lanes: opt.lanes,
		}
		if opt.durable {
			dir, err := os.MkdirTemp("", "polybench-wal-")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(dir)
			ncfg.DataDir = dir
			ncfg.SyncWAL = true
			ncfg.GroupCommitWindow = opt.gcWindow
			if fs, err := diskFaultFS(opt, id, reg); err != nil {
				return nil, err
			} else if fs != nil {
				ncfg.DiskFS = fs
			}
		}
		if opt.replicas > 0 {
			ncfg.Replication = &cluster.ReplicationConfig{
				K: opt.replicas, W: opt.wquorum, R: opt.rquorum,
			}
		}
		node, err := cluster.NewNode(ncfg, id, fab)
		if err != nil {
			return nil, err
		}
		nodes[i] = node
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	if opt.telAddr != "" {
		tel, err := telemetry.Serve(opt.telAddr, telemetry.Config{Registry: reg, Spans: spans})
		if err != nil {
			return nil, err
		}
		defer tel.Close()
		fmt.Fprintf(os.Stderr, "polybench: telemetry at http://%s\n", tel.Addr)
	}

	progs, init, err := programs(opt)
	if err != nil {
		return nil, err
	}
	// Parse the whole mix before the clock starts: submit-side parsing is
	// client work, not protocol work, and should not dilute the measured
	// window.
	parsed := make([]expr.Program, len(progs))
	for i, src := range progs {
		if parsed[i], err = expr.Parse(src); err != nil {
			return nil, fmt.Errorf("program %d: %w", i, err)
		}
	}
	for _, node := range nodes {
		for item, v := range init {
			if opt.replicas > 0 {
				// Each node loads the replicas it hosts (version 1).
				if err := node.LoadReplicated(item, v); err != nil {
					return nil, err
				}
			} else if node.Local(item) {
				if err := node.Load(item, v); err != nil {
					return nil, err
				}
			}
		}
	}

	res := &runResult{latencies: make([]time.Duration, 0, opt.txns)}
	lat := make([]time.Duration, opt.txns)
	status := make([]cluster.Status, opt.txns)
	waited := make([]bool, opt.txns)
	var shedN atomic.Int64
	var next atomic.Int64
	var wg sync.WaitGroup
	if opt.profile != "" {
		f, err := os.Create(opt.profile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return nil, err
		}
		defer pprof.StopCPUProfile()
	}
	start := time.Now()
	for w := 0; w < opt.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= opt.txns {
					return
				}
				node := nodes[i%opt.sites]
				t0 := time.Now()
				var h *cluster.Handle
				var err error
				for {
					h, err = node.SubmitProgram(node.Self(), parsed[i])
					if !errors.Is(err, cluster.ErrOverload) {
						break
					}
					// Shed: admission control pushed the wait onto the
					// client.  Back off and retry; the backoff stays
					// inside the client-observed latency.
					shedN.Add(1)
					time.Sleep(500 * time.Microsecond)
				}
				if err != nil {
					status[i], waited[i] = cluster.StatusAborted, true
					lat[i] = time.Since(t0)
					continue
				}
				st, done := h.Wait(opt.waitTxn)
				lat[i] = time.Since(t0)
				status[i], waited[i] = st, done
			}
		}()
	}
	wg.Wait()
	res.duration = time.Since(start)

	res.shed = int(shedN.Load())
	for i := range status {
		switch {
		case !waited[i]:
			res.timeouts++
		case status[i] == cluster.StatusCommitted:
			res.committed++
			res.latencies = append(res.latencies, lat[i])
		default:
			res.aborted++
			res.latencies = append(res.latencies, lat[i])
		}
	}

	// Quiescence: wait for in-flight protocol state (prepared txns,
	// locks, outcome-request loops, polyvalues) to drain on every node
	// before the conservation audit — a participant can briefly hold a
	// decided-but-unapplied update after the client's Wait returns.
	deadline := time.Now().Add(opt.settle)
	settled := false
	for !time.Now().After(deadline) {
		quiet := true
		for _, n := range nodes {
			if !nodeQuiet(n) {
				quiet = false
				break
			}
		}
		if quiet {
			settled = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	res.auditErr = auditInproc(opt, nodes, init)
	if res.auditErr != nil && !settled {
		var states []string
		for _, n := range nodes {
			if info, err := n.SiteInfo(n.Self()); err == nil {
				states = append(states, fmt.Sprintf("%s{poly=%d prepared=%d locks=%d awaits=%d}",
					n.Self(), info.PolyItems, info.Prepared, info.Locks, info.Awaits))
			}
		}
		res.auditErr = fmt.Errorf("%w (cluster never quiesced within -settle %v: %s)",
			res.auditErr, opt.settle, strings.Join(states, " "))
	}
	// A failed fsync under a -disk-faults plan durability-panics the
	// site, and polybench has no rebuilder (that is RunDiskChaos's
	// job) — name the dead sites instead of a bare audit failure.
	if res.auditErr != nil && opt.diskFlts != "" {
		var lost []string
		for _, n := range nodes {
			if n.DurabilityLost(n.Self()) {
				lost = append(lost, string(n.Self()))
			}
		}
		if len(lost) > 0 {
			res.auditErr = fmt.Errorf("%w; site(s) %s took durability panics under -disk-faults and stay down until rebuilt — benchmark gray failures (slow/readflip) here, use `make diskchaos` for fsync/ENOSPC torture",
				res.auditErr, strings.Join(lost, " "))
		}
	}
	res.flushes, res.batchN, res.batchSum = batchCounters(reg)
	return res, nil
}

// nodeQuiet reports whether a node has no protocol state in flight.
func nodeQuiet(n *cluster.Cluster) bool {
	info, err := n.SiteInfo(n.Self())
	if err != nil {
		return false
	}
	return info.PolyItems == 0 && info.Prepared == 0 && info.Locks == 0 && info.Awaits == 0
}

// auditInproc checks the invariant the workload promises: every item is
// certain at quiescence, and for the bank workload money is conserved.
// Replicated runs audit the freshest replica by version — a committed
// write reaches only W of the K copies synchronously, and gossip may
// still be converging the rest when the settle window closes.
func auditInproc(opt options, nodes []*cluster.Cluster, init map[string]polyvalue.Poly) error {
	var total, want int64
	for item, v0 := range init {
		p, err := readFreshest(opt, nodes, item)
		if err != nil {
			return err
		}
		v, ok := p.IsCertain()
		if !ok {
			return fmt.Errorf("item %s still uncertain after settle: %v", item, p)
		}
		if opt.kind == "bank" || opt.kind == "overload" {
			n, _ := value.AsInt(v)
			total += n
			w, _ := v0.IsCertain()
			n0, _ := value.AsInt(w)
			want += n0
		}
	}
	if (opt.kind == "bank" || opt.kind == "overload") && total != want {
		return fmt.Errorf("conservation violated: total=%d want=%d", total, want)
	}
	return nil
}

// readFreshest returns an item's value for the audit: the owning node's
// copy, or under replication the max-version replica across the nodes
// hosting one.
func readFreshest(opt options, nodes []*cluster.Cluster, item string) (polyvalue.Poly, error) {
	if opt.replicas == 0 {
		for _, n := range nodes {
			if n.Local(item) {
				return n.Read(item), nil
			}
		}
		return polyvalue.Poly{}, fmt.Errorf("item %s has no owning node", item)
	}
	var best polyvalue.Poly
	var bestVer uint64
	found := false
	for i := 0; i < opt.replicas; i++ {
		phys := replica.Name(item, i)
		for _, n := range nodes {
			if !n.Local(phys) {
				continue
			}
			ver := n.Store(n.Self()).Version(phys)
			if !found || ver > bestVer {
				best, bestVer, found = n.Read(phys), ver, true
			}
		}
	}
	if !found {
		return polyvalue.Poly{}, fmt.Errorf("item %s has no hosted replica", item)
	}
	return best, nil
}

// ---------------------------------------------------------------------
// procs mode: parent re-execs itself as one child per site
// ---------------------------------------------------------------------

type childProc struct {
	id   protocol.SiteID
	cmd  *exec.Cmd
	in   *bufio.Writer
	inMu sync.Mutex
	ctrl chan string // non-RESULT replies, in command order
}

func (c *childProc) send(line string) error {
	c.inMu.Lock()
	defer c.inMu.Unlock()
	if _, err := c.in.WriteString(line + "\n"); err != nil {
		return err
	}
	return c.in.Flush()
}

// call sends one control command and waits for its single-line reply.
func (c *childProc) call(line string, timeout time.Duration) (string, error) {
	if err := c.send(line); err != nil {
		return "", err
	}
	select {
	case reply, ok := <-c.ctrl:
		if !ok {
			return "", fmt.Errorf("child %s exited", c.id)
		}
		return reply, nil
	case <-time.After(timeout):
		return "", fmt.Errorf("child %s: no reply to %q", c.id, line)
	}
}

type resultMsg struct {
	status  string
	latency time.Duration
}

func runProcs(opt options) (*runResult, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	names := siteNames(opt.sites)
	children := make([]*childProc, opt.sites)
	pending := struct {
		sync.Mutex
		m map[int]chan resultMsg
	}{m: map[int]chan resultMsg{}}

	defer func() {
		for _, c := range children {
			if c != nil {
				c.send("EXIT")
				c.cmd.Wait()
			}
		}
	}()

	addrs := make([]string, opt.sites)
	for i, id := range names {
		cmd := exec.Command(exe,
			"-child", "-site", string(id),
			"-sites", strconv.Itoa(opt.sites),
			"-workload", opt.kind,
			"-items", strconv.Itoa(opt.items),
			"-seed", strconv.FormatInt(opt.seed, 10),
			"-txns", strconv.Itoa(opt.txns),
			"-batch="+strconv.FormatBool(opt.batch),
			"-txn-timeout", opt.waitTxn.String(),
			"-settle", opt.settle.String(),
			"-gogc", strconv.Itoa(opt.gogc),
			"-batch-max", strconv.Itoa(opt.batchMax),
			"-batch-delay", opt.batchLng.String(),
			"-admission", strconv.Itoa(opt.admit),
			"-txn-deadline", opt.deadline.String(),
			"-decision-plane", planeName(opt),
			"-spans", strconv.Itoa(opt.spansN),
			"-lanes", strconv.Itoa(opt.lanes),
			"-durable="+strconv.FormatBool(opt.durable),
			"-group-commit-window", opt.gcWindow.String(),
			"-disk-faults", opt.diskFlts,
			"-disk-fault-seed", strconv.FormatInt(opt.diskSd, 10),
		)
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return nil, err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return nil, err
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("start child %s: %w", id, err)
		}
		c := &childProc{id: id, cmd: cmd, in: bufio.NewWriter(stdin), ctrl: make(chan string, 4)}
		children[i] = c

		sc := bufio.NewScanner(stdout)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		if !sc.Scan() {
			return nil, fmt.Errorf("child %s died before ADDR", id)
		}
		addr, ok := strings.CutPrefix(sc.Text(), "ADDR ")
		if !ok {
			return nil, fmt.Errorf("child %s: want ADDR, got %q", id, sc.Text())
		}
		addrs[i] = addr
		// Demux the child's stdout: RESULT lines resolve pending
		// submissions, everything else answers the last control command.
		go func(c *childProc, sc *bufio.Scanner) {
			defer close(c.ctrl)
			for sc.Scan() {
				line := sc.Text()
				rest, ok := strings.CutPrefix(line, "RESULT ")
				if !ok {
					c.ctrl <- line
					continue
				}
				f := strings.Fields(rest)
				if len(f) != 3 {
					continue
				}
				id, _ := strconv.Atoi(f[0])
				ns, _ := strconv.ParseInt(f[2], 10, 64)
				pending.Lock()
				ch := pending.m[id]
				delete(pending.m, id)
				pending.Unlock()
				if ch != nil {
					ch <- resultMsg{status: f[1], latency: time.Duration(ns)}
				}
			}
		}(c, sc)
	}

	var peerList []string
	for i, id := range names {
		peerList = append(peerList, string(id)+"="+addrs[i])
	}
	peersLine := "PEERS " + strings.Join(peerList, ",")
	for _, c := range children {
		reply, err := c.call(peersLine, 10*time.Second)
		if err != nil {
			return nil, err
		}
		if reply != "READY" {
			return nil, fmt.Errorf("child %s: want READY, got %q", c.id, reply)
		}
	}
	if opt.verbose {
		fmt.Fprintf(os.Stderr, "polybench: %d children ready\n", opt.sites)
	}

	progs, _, err := programs(opt)
	if err != nil {
		return nil, err
	}
	res := &runResult{latencies: make([]time.Duration, 0, opt.txns)}
	lat := make([]time.Duration, opt.txns)
	statuses := make([]string, opt.txns)
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < opt.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= opt.txns {
					return
				}
				c := children[i%opt.sites]
				ch := make(chan resultMsg, 1)
				pending.Lock()
				pending.m[i] = ch
				pending.Unlock()
				if err := c.send(fmt.Sprintf("SUBMIT %d %s", i, progs[i])); err != nil {
					statuses[i] = "error"
					continue
				}
				select {
				case r := <-ch:
					statuses[i], lat[i] = r.status, r.latency
				case <-time.After(opt.waitTxn + 5*time.Second):
					statuses[i] = "timeout"
					pending.Lock()
					delete(pending.m, i)
					pending.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	res.duration = time.Since(start)

	for i, st := range statuses {
		switch st {
		case "committed":
			res.committed++
			res.latencies = append(res.latencies, lat[i])
		case "aborted":
			res.aborted++
			res.latencies = append(res.latencies, lat[i])
		default:
			res.timeouts++
		}
	}

	// Audit + transport stats come from the children, which wait for
	// their local polyvalues to drain before answering SUM.
	var total, want int64
	var polys int64
	for _, c := range children {
		reply, err := c.call("SUM", opt.settle+10*time.Second)
		if err != nil {
			return nil, err
		}
		var sum, w, p int64
		if _, err := fmt.Sscanf(reply, "SUMOK %d %d %d", &sum, &w, &p); err != nil {
			return nil, fmt.Errorf("child %s: bad SUM reply %q", c.id, reply)
		}
		total, want, polys = total+sum, want+w, polys+p

		reply, err = c.call("STATS", 10*time.Second)
		if err != nil {
			return nil, err
		}
		var fl, bn, shd int64
		var bsum float64
		if _, err := fmt.Sscanf(reply, "STATSOK %d %d %g %d", &fl, &bn, &bsum, &shd); err != nil {
			return nil, fmt.Errorf("child %s: bad STATS reply %q", c.id, reply)
		}
		res.flushes += fl
		res.batchN += bn
		res.batchSum += bsum
		res.shed += int(shd)
	}
	if polys > 0 {
		res.auditErr = fmt.Errorf("%d items still uncertain after settle", polys)
	} else if (opt.kind == "bank" || opt.kind == "overload") && total != want {
		res.auditErr = fmt.Errorf("conservation violated: total=%d want=%d", total, want)
	}
	return res, nil
}

// ---------------------------------------------------------------------
// procs-mode child: one site, line protocol on stdin/stdout
// ---------------------------------------------------------------------

func runChild(opt options) error {
	if opt.siteArg == "" {
		return fmt.Errorf("-child requires -site")
	}
	self := protocol.SiteID(opt.siteArg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	var outMu sync.Mutex
	emit := func(format string, args ...any) {
		outMu.Lock()
		fmt.Printf(format+"\n", args...)
		outMu.Unlock()
	}
	emit("ADDR %s", ln.Addr())

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 0, 64<<10), 1<<20)
	if !in.Scan() {
		return fmt.Errorf("stdin closed before PEERS")
	}
	rest, ok := strings.CutPrefix(in.Text(), "PEERS ")
	if !ok {
		return fmt.Errorf("want PEERS, got %q", in.Text())
	}
	peers := map[protocol.SiteID]string{}
	for _, part := range strings.Split(rest, ",") {
		id, addr, ok := strings.Cut(part, "=")
		if !ok {
			return fmt.Errorf("bad PEERS entry %q", part)
		}
		peers[protocol.SiteID(id)] = addr
	}
	names := siteNames(opt.sites)
	reg := metrics.NewRegistry()
	var spans *trace.SpanLog
	if opt.spansN > 0 {
		spans = trace.NewSpanLogFor(string(self), opt.spansN)
	}
	fab := transport.NewTCPWithListener(tcpConfig(self, peers, reg, opt), ln)
	plane, policy, err := planeConfig(opt)
	if err != nil {
		return err
	}
	ccfg := cluster.Config{
		Sites: names, Metrics: reg, Spans: spans,
		AdmissionLimit: opt.admit, TxnDeadline: opt.deadline,
		DecisionPlane: plane, Policy: policy,
		Lanes: opt.lanes,
	}
	if opt.durable {
		dir, err := os.MkdirTemp("", "polybench-wal-"+string(self)+"-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		ccfg.DataDir = dir
		ccfg.SyncWAL = true
		ccfg.GroupCommitWindow = opt.gcWindow
		if fs, err := diskFaultFS(opt, self, reg); err != nil {
			return err
		} else if fs != nil {
			ccfg.DiskFS = fs
		}
	}
	node, err := cluster.NewNode(ccfg, self, fab)
	if err != nil {
		return err
	}
	defer node.Close()

	_, init, err := programs(opt)
	if err != nil {
		return err
	}
	for item, v := range init {
		if node.Local(item) {
			if err := node.Load(item, v); err != nil {
				return err
			}
		}
	}
	emit("READY")

	var shedN atomic.Int64
	var wg sync.WaitGroup
	for in.Scan() {
		line := in.Text()
		cmd, rest, _ := strings.Cut(line, " ")
		switch cmd {
		case "SUBMIT":
			idStr, prog, ok := strings.Cut(rest, " ")
			if !ok {
				emit("RESULT %s error 0", idStr)
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				t0 := time.Now()
				var h *cluster.Handle
				var err error
				for {
					h, err = node.Submit(self, prog)
					if !errors.Is(err, cluster.ErrOverload) {
						break
					}
					shedN.Add(1)
					time.Sleep(500 * time.Microsecond)
				}
				if err != nil {
					emit("RESULT %s aborted %d", idStr, time.Since(t0).Nanoseconds())
					return
				}
				st, done := h.Wait(opt.waitTxn)
				name := "timeout"
				if done {
					if st == cluster.StatusCommitted {
						name = "committed"
					} else {
						name = "aborted"
					}
				}
				emit("RESULT %s %s %d", idStr, name, time.Since(t0).Nanoseconds())
			}()
		case "SUM":
			wg.Wait()
			deadline := time.Now().Add(opt.settle)
			for !nodeQuiet(node) && time.Now().Before(deadline) {
				time.Sleep(50 * time.Millisecond)
			}
			var total, want, polys int64
			for item, v0 := range init {
				if !node.Local(item) {
					continue
				}
				v, ok := node.Read(item).IsCertain()
				if !ok {
					polys++
					continue
				}
				n, _ := value.AsInt(v)
				total += n
				w, _ := v0.IsCertain()
				n0, _ := value.AsInt(w)
				want += n0
			}
			emit("SUMOK %d %d %d", total, want, polys)
		case "STATS":
			fl, bn, bsum := batchCounters(reg)
			emit("STATSOK %d %d %g %d", fl, bn, bsum, shedN.Load())
		case "EXIT":
			return nil
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// BENCH file + baseline comparison
// ---------------------------------------------------------------------

type benchFile struct {
	Schema   int       `json:"schema"`
	Rev      string    `json:"rev"`
	When     string    `json:"when"`
	Go       string    `json:"go"`
	Settings []setting `json:"settings"`
}

func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// writeBench merges s (by setting name) into the BENCH file at path.
func writeBench(path string, s setting) error {
	f := benchFile{Schema: 1}
	if raw, err := os.ReadFile(path); err == nil {
		json.Unmarshal(raw, &f) // corrupt file: start fresh
	}
	f.Schema = 1
	f.Rev = gitRev()
	f.When = time.Now().UTC().Format(time.RFC3339)
	f.Go = runtime.Version()
	replaced := false
	for i := range f.Settings {
		if f.Settings[i].Name == s.Name {
			f.Settings[i] = s
			replaced = true
		}
	}
	if !replaced {
		f.Settings = append(f.Settings, s)
	}
	raw, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// compareBaseline fails when s regressed more than allowed vs the
// same-named setting in the baseline file; an absent setting passes (new
// benchmarks get a baseline on the next refresh).
func compareBaseline(path string, s setting, allowed float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base benchFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	for _, b := range base.Settings {
		if b.Name != s.Name {
			continue
		}
		floor := b.ThroughputTPS * (1 - allowed)
		if s.ThroughputTPS < floor {
			return fmt.Errorf("throughput regression: %s ran %.0f tps, baseline %.0f tps (floor %.0f, -regress %.0f%%)",
				s.Name, s.ThroughputTPS, b.ThroughputTPS, floor, allowed*100)
		}
		fmt.Printf("baseline check ok: %s %.0f tps vs baseline %.0f tps (floor %.0f)\n",
			s.Name, s.ThroughputTPS, b.ThroughputTPS, floor)
		return nil
	}
	fmt.Printf("baseline check skipped: no setting %q in %s\n", s.Name, path)
	return nil
}
