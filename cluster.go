package polyvalues

import (
	"repro/internal/cluster"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/transport"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------
// Distributed cluster runtime
// ---------------------------------------------------------------------

// SiteID names a database site.
type SiteID = protocol.SiteID

// Cluster is a deterministic goroutine-per-site distributed database
// running the paper's update protocol over a simulated network.
type Cluster = cluster.Cluster

// ClusterConfig parameterizes a cluster.
type ClusterConfig = cluster.Config

// NetConfig parameterizes the simulated network (latency, jitter, seed).
type NetConfig = network.Config

// Policy selects wait-phase timeout behaviour.
type Policy = cluster.Policy

// Wait-phase timeout policies.
const (
	// PolicyPolyvalue installs polyvalues and keeps the items available
	// (the paper's mechanism).
	PolicyPolyvalue = cluster.PolicyPolyvalue
	// PolicyBlocking holds the items locked until the outcome is known
	// (classic 2PC baseline).
	PolicyBlocking = cluster.PolicyBlocking
	// PolicyArbitrary makes an arbitrary local decision (the paper's
	// §2.3 relaxed-consistency baseline; can violate atomicity).
	PolicyArbitrary = cluster.PolicyArbitrary
)

// NewCluster builds and starts a cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// SiteInfo is an observability snapshot of one site.
type SiteInfo = cluster.SiteInfo

// ErrStillUncertain reports a QueryCertain whose answer was still a
// polyvalue at its deadline (§3.4 withhold mode).
var ErrStillUncertain = cluster.ErrStillUncertain

// Handle tracks a submitted transaction.
type Handle = cluster.Handle

// QueryHandle tracks a read-only query.
type QueryHandle = cluster.QueryHandle

// Status is a transaction's client-visible state.
type Status = cluster.Status

// Client-visible transaction statuses.
const (
	StatusPending   = cluster.StatusPending
	StatusCommitted = cluster.StatusCommitted
	StatusAborted   = cluster.StatusAborted
)

// ClusterStats aggregates cluster-wide counters.
type ClusterStats = cluster.Stats

// ---------------------------------------------------------------------
// Observability (metrics registry, snapshots, text export)
// ---------------------------------------------------------------------

// MetricsRegistry is a named collection of counters, gauges and
// histograms.  Every cluster (and, when Params.Metrics is set, every sim
// run) reports into one; pass the same registry to several components to
// aggregate, or read a cluster's private registry via Cluster.Metrics.
type MetricsRegistry = metrics.Registry

// MetricsSnapshot is a point-in-time copy of a registry, sorted and
// deterministic; Diff computes the window between two snapshots and
// Export renders the Prometheus-style text form.
type MetricsSnapshot = metrics.Snapshot

// MetricsPoint is one series inside a snapshot.
type MetricsPoint = metrics.Point

// MetricsLabel attaches a dimension (site, phase, message type) to a
// series.
type MetricsLabel = metrics.Label

// NewMetricsRegistry returns an empty registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// ---------------------------------------------------------------------
// Workload generators (§5 application domains)
// ---------------------------------------------------------------------

// Workload generates transaction mixes for the §5 application domains.
type Workload = workload.Generator

// WorkloadConfig parameterizes a workload generator.
type WorkloadConfig = workload.Config

// WorkloadKind selects the application domain.
type WorkloadKind = workload.Kind

// Workload kinds.
const (
	WorkloadBank         = workload.Bank
	WorkloadReservations = workload.Reservations
	WorkloadInventory    = workload.Inventory
)

// NewWorkload builds a workload generator.
func NewWorkload(cfg WorkloadConfig) (*Workload, error) { return workload.New(cfg) }

// ---------------------------------------------------------------------
// Experiment harness (cluster-level evaluation)
// ---------------------------------------------------------------------

// Experiment configures a cluster-level evaluation run: a workload under
// a coordinator-crash schedule, measuring availability and polyvalue
// population against the live protocol implementation.
type Experiment = harness.Experiment

// ExperimentReport is the outcome of one experiment.
type ExperimentReport = harness.Report

// ExperimentSample is one point of an experiment's population series.
type ExperimentSample = harness.Sample

// RunExperiment executes a cluster-level experiment.
func RunExperiment(e Experiment) (ExperimentReport, error) { return harness.Run(e) }

// ---------------------------------------------------------------------
// Multi-process runtime (wire codec + TCP transport + node)
// ---------------------------------------------------------------------

// Transport is the message fabric a cluster site sends protocol
// messages through: the simulated network (NewSimTransport) or real TCP
// sockets between processes (NewTCPTransport).
type Transport = transport.Transport

// TCPTransport carries protocol messages between OS processes over TCP
// using the versioned binary wire codec, with per-peer reconnect
// (capped exponential backoff + jitter) and write deadlines.
type TCPTransport = transport.TCP

// TCPTransportConfig parameterizes a TCP transport for one site.
type TCPTransportConfig = transport.TCPConfig

// TransportStats snapshots a TCP transport's counters, with a sorted
// per-peer breakdown.
type TransportStats = transport.TCPStats

// NewTCPTransport opens the listener and starts per-peer writers.
func NewTCPTransport(cfg TCPTransportConfig) (*TCPTransport, error) {
	return transport.NewTCP(cfg)
}

// NewNode builds a single-site cluster over a caller-supplied transport
// on wall-clock time — one process of a multi-process cluster (see
// cmd/polynode).  Every process must pass the identical cfg.Sites list.
func NewNode(cfg ClusterConfig, self SiteID, fab Transport) (*Cluster, error) {
	return cluster.NewNode(cfg, self, fab)
}
