package polyvalues_test

import (
	"fmt"
	"time"

	polyvalues "repro"
)

// The §3.1 in-doubt polyvalue: two possible values, conditioned on the
// interrupted transaction's outcome.
func ExampleUncertain() {
	balance := polyvalues.Uncertain("T7",
		polyvalues.Simple(polyvalues.Int(60)),
		polyvalues.Simple(polyvalues.Int(100)))
	fmt.Println(balance)
	min, max, _ := balance.MinMax()
	fmt.Printf("between %g and %g\n", min, max)
	// Output:
	// {<60, T7>, <100, !T7>}
	// between 60 and 100
}

// Resolving an outcome (§3.3) collapses the polyvalue.
func ExamplePoly_Resolve() {
	balance := polyvalues.Uncertain("T7",
		polyvalues.Simple(polyvalues.Int(60)),
		polyvalues.Simple(polyvalues.Int(100)))
	fmt.Println(balance.Resolve("T7", true))
	fmt.Println(balance.Resolve("T7", false))
	// Output:
	// 60
	// 100
}

// A polytransaction (§3.2) forks per possible input; outputs that agree
// across alternatives come out certain.
func ExampleExecutor() {
	balance := polyvalues.Uncertain("T7",
		polyvalues.Simple(polyvalues.Int(60)),
		polyvalues.Simple(polyvalues.Int(100)))
	ex := &polyvalues.Executor{}
	res, err := ex.Execute(
		polyvalues.MustTxn("T8", "ok = balance >= 50"),
		func(string) polyvalues.Poly { return balance })
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Writes["ok"], res.Certain)
	// Output:
	// true true
}

// Probability-weighted uncertain outputs (§3.4 extension): in-doubt
// transactions usually commit, so weight the branches.
func ExamplePoly_Expected() {
	balance := polyvalues.Uncertain("T7",
		polyvalues.Simple(polyvalues.Int(60)),
		polyvalues.Simple(polyvalues.Int(100)))
	e, _ := balance.Expected(0.9)
	fmt.Printf("%.1f\n", e)
	// Output:
	// 64.0
}

// A full cluster run: crash the coordinator at the critical moment,
// watch the polyvalue appear, repair, and watch it resolve.
func ExampleCluster() {
	c, err := polyvalues.NewCluster(polyvalues.ClusterConfig{
		Sites: []polyvalues.SiteID{"a", "b"},
		Placement: func(item string) polyvalues.SiteID {
			return "b" // all items on b; a coordinates
		},
	})
	if err != nil {
		panic(err)
	}
	defer c.Close()
	c.Load("x", polyvalues.Simple(polyvalues.Int(100)))

	c.ArmCrashBeforeDecision("a")
	c.Submit("a", "x = x - 40")
	c.RunFor(2 * time.Second)
	fmt.Println("in doubt:", c.Read("x"))

	c.Restart("a") // no decision logged → presumed abort
	c.RunFor(10 * time.Second)
	fmt.Println("repaired:", c.Read("x"))
	// Output:
	// in doubt: {<60, t.T1>, <100, !t.T1>}
	// repaired: 100
}

// The condition algebra: predicates over transaction outcomes in
// canonical sum-of-products form.
func ExampleParseCond() {
	c, _ := polyvalues.ParseCond("T1&T2 | T1&!T2")
	fmt.Println(c.Minimize())
	fmt.Println(polyvalues.Committed("T1").Or(polyvalues.Aborted("T1")))
	// Output:
	// T1
	// true
}

// §3.4's second option: withhold the answer until the uncertainty
// resolves.
func ExampleCluster_QueryCertain() {
	c, err := polyvalues.NewCluster(polyvalues.ClusterConfig{
		Sites:     []polyvalues.SiteID{"a", "b"},
		Placement: func(string) polyvalues.SiteID { return "b" },
	})
	if err != nil {
		panic(err)
	}
	defer c.Close()
	c.Load("x", polyvalues.Simple(polyvalues.Int(1)))
	c.ArmCrashBeforeDecision("a")
	c.Submit("a", "x = 2")
	c.RunFor(2 * time.Second)

	qh, _ := c.QueryCertain("b", "x", 60*time.Second)
	c.RunFor(5 * time.Second)
	_, _, done := qh.Result()
	fmt.Println("answered while uncertain:", done)

	c.Restart("a")
	c.RunFor(30 * time.Second)
	p, err, _ := qh.Result()
	fmt.Println("after repair:", p, err)
	// Output:
	// answered while uncertain: false
	// after repair: 1 <nil>
}

// The §4.1 analytic model, at the paper's typical operating point.
func ExampleModelParams() {
	p := polyvalues.ModelParams{U: 10, F: 0.0001, I: 1e6, R: 0.001, Y: 0, D: 1}
	fmt.Printf("steady state: %.2f polyvalues\n", p.SteadyState())
	// Output:
	// steady state: 1.01 polyvalues
}
